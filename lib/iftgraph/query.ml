(* Queries over a single store.

   Backward source-finding deliberately mirrors Trace.Provenance.chain:
   it walks at tag granularity (visit a class -> scan every commit to
   that class -> enqueue merge/declass input classes), so the source set
   it returns for a violation is exactly the set the live forensic
   walk-back reports — the tier-1 acceptance check diffs the two.
   Forward reach works on the explicit flow edges instead, which
   respects observation order (only commits at-or-after the start nodes
   are reached). *)

type pred =
  | P_violation of int  (** k-th violation node of the store, 0-based. *)
  | P_pc of int  (** Nodes stamped with this pc. *)
  | P_tag of string  (** Commits to the named class. *)
  | P_origin of string  (** Seeds from this origin / via channel. *)
  | P_addr of int  (** Seeds covering this bus address. *)

let pred_to_string = function
  | P_violation k -> Printf.sprintf "violation:%d" k
  | P_pc pc -> Printf.sprintf "pc:0x%x" pc
  | P_tag n -> "tag:" ^ n
  | P_origin o -> "origin:" ^ o
  | P_addr a -> Printf.sprintf "addr:0x%x" a

let parse_pred s =
  match String.index_opt s ':' with
  | None ->
      Error
        (Printf.sprintf
           "bad predicate %S (expected violation:K, pc:0xADDR, tag:NAME, \
            origin:NAME or addr:0xADDR)"
           s)
  | Some i -> (
      let kind = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      let num what =
        match int_of_string_opt v with
        | Some n when n >= 0 -> Ok n
        | _ -> Error (Printf.sprintf "bad %s in predicate %S" what s)
      in
      match kind with
      | "violation" -> Result.map (fun k -> P_violation k) (num "index")
      | "pc" -> Result.map (fun pc -> P_pc pc) (num "address")
      | "addr" -> Result.map (fun a -> P_addr a) (num "address")
      | "tag" -> if v = "" then Error "empty tag name" else Ok (P_tag v)
      | "origin" ->
          if v = "" then Error "empty origin name" else Ok (P_origin v)
      | k -> Error (Printf.sprintf "unknown predicate kind %S in %S" k s))

let start_nodes store idx = function
  | P_violation k ->
      if k >= 0 && k < Array.length idx.Store.violations then
        [ idx.Store.violations.(k) ]
      else []
  | P_pc pc ->
      Array.to_list store.Store.nodes
      |> List.filter_map (fun n ->
             if n.Store.n_pc = pc then Some n.Store.n_id else None)
  | P_tag name ->
      Array.to_list store.Store.nodes
      |> List.filter_map (fun n ->
             if Store.tag_name store n.Store.n_tag = name then
               Some n.Store.n_id
             else None)
  | P_origin origin ->
      Array.to_list store.Store.nodes
      |> List.filter_map (fun n ->
             if
               (n.Store.n_kind = Store.Seed || n.Store.n_kind = Store.Via)
               && n.Store.n_origin = origin
             then Some n.Store.n_id
             else None)
  | P_addr addr ->
      Array.to_list store.Store.nodes
      |> List.filter_map (fun n ->
             if n.Store.n_kind = Store.Seed && n.Store.n_addr = addr then
               Some n.Store.n_id
             else None)

(* --- Backward: which seeds reach these nodes? ------------------------- *)

type source = {
  src_origin : string;
  src_addr : int option;
  src_tag : int;
  src_time : int;
  src_node : int;
}

type back = {
  bk_pred : pred;
  bk_start : int list;  (** Matched start node ids. *)
  bk_sources : source list;  (** Deduped, (origin, addr, tag)-sorted. *)
  bk_tags : int list;  (** Classes visited by the walk, ascending. *)
  bk_nodes_visited : int;
}

let sources_of store idx pred =
  let starts = start_nodes store idx pred in
  let ntags = Array.length store.Store.meta.classes in
  let tag_seen = Array.make (max 1 ntags) false in
  let queue = Queue.create () in
  let push tag =
    if tag >= 0 && tag < ntags && not tag_seen.(tag) then begin
      tag_seen.(tag) <- true;
      Queue.add tag queue
    end
  in
  List.iter (fun id -> push store.Store.nodes.(id).Store.n_tag) starts;
  let sources = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let tag = Queue.pop queue in
    List.iter
      (fun id ->
        incr visited;
        let n = store.Store.nodes.(id) in
        match n.Store.n_kind with
        | Store.Seed ->
            sources :=
              {
                src_origin = n.Store.n_origin;
                src_addr = (if n.Store.n_addr < 0 then None else Some n.Store.n_addr);
                src_tag = n.Store.n_tag;
                src_time = n.Store.n_time;
                src_node = n.Store.n_id;
              }
              :: !sources
        | Store.Merge ->
            push n.Store.n_a;
            push n.Store.n_b
        | Store.Declass -> push n.Store.n_a
        | Store.Via | Store.Violation -> ())
      idx.Store.by_tag.(tag)
  done;
  let tags = ref [] in
  for tag = ntags - 1 downto 0 do
    if tag_seen.(tag) then tags := tag :: !tags
  done;
  let sources =
    List.sort_uniq
      (fun a b ->
        compare
          (a.src_origin, a.src_addr, a.src_tag)
          (b.src_origin, b.src_addr, b.src_tag))
      !sources
  in
  {
    bk_pred = pred;
    bk_start = starts;
    bk_sources = sources;
    bk_tags = !tags;
    bk_nodes_visited = !visited;
  }

(* --- Forward: what does this flow into? ------------------------------- *)

type reach = {
  rc_pred : pred;
  rc_start : int list;
  rc_nodes_reached : int;
  rc_tags : int list;  (** Classes of reached commits, ascending. *)
  rc_violations : int list;  (** Reached violation node ids, ascending. *)
  rc_origins : string list;  (** Seed/via origins inside the reach. *)
}

let reaches store idx pred =
  let starts = start_nodes store idx pred in
  let n = Array.length store.Store.nodes in
  let seen = Array.make (max 1 n) false in
  let queue = Queue.create () in
  let push id =
    if id >= 0 && id < n && not seen.(id) then begin
      seen.(id) <- true;
      Queue.add id queue
    end
  in
  List.iter push starts;
  let reached = ref 0 in
  let tags = Hashtbl.create 8 in
  let violations = ref [] in
  let origins = ref [] in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    incr reached;
    let nd = store.Store.nodes.(id) in
    Hashtbl.replace tags nd.Store.n_tag ();
    (match nd.Store.n_kind with
    | Store.Violation -> violations := id :: !violations
    | Store.Seed | Store.Via ->
        if not (List.mem nd.Store.n_origin !origins) then
          origins := nd.Store.n_origin :: !origins
    | Store.Merge | Store.Declass -> ());
    List.iter push idx.Store.out_edges.(id)
  done;
  {
    rc_pred = pred;
    rc_start = starts;
    rc_nodes_reached = !reached;
    rc_tags = List.sort compare (Hashtbl.fold (fun t () acc -> t :: acc) tags []);
    rc_violations = List.sort compare !violations;
    rc_origins = List.sort compare !origins;
  }
