(* Incremental construction of a Store.t while a simulation runs.

   Every observed commit is appended as it happens; exact repeats (same
   kind, tags, origin, addr AND pc) coalesce into the existing node's
   count, so a hot loop recomputing the same join settles into a single
   hashtable hit per iteration. Edges are derived on append:

   - a per-tag chain edge from the previous commit of the same class, so
     every earlier contributor to a tag stays reachable backward; and
   - for merges/declassifications, input edges from the latest commit of
     each input class.

   Node ids are append-ordered, which keeps every edge forward
   (from < to) and the store's delta encoding compact. *)

type key = {
  k_kind : Store.kind;
  k_tag : int;
  k_a : int;
  k_b : int;
  k_origin : string;
  k_addr : int;
  k_pc : int;
}

type pending = {
  p_kind : Store.kind;
  p_tag : int;
  p_time : int;
  p_pc : int;
  p_a : int;
  p_b : int;
  p_origin : string;
  p_addr : int;
  mutable p_count : int;
}

type t = {
  classes : string array;
  mutable context : string;
  mutable nodes : pending list;  (** Newest first. *)
  mutable n_nodes : int;
  mutable edges : Store.edge list;  (** Newest first. *)
  mutable n_edges : int;
  seen : (key, pending) Hashtbl.t;
  latest : int array;  (** tag -> newest committing node id; -1 none. *)
  mutable cur_time : int;
  mutable cur_pc : int;
  mutable dropped_edges : int;
  mutable dropped_sources : int;
}

let create ?(context = "") ~classes () =
  {
    classes = Array.of_list classes;
    context;
    nodes = [];
    n_nodes = 0;
    edges = [];
    n_edges = 0;
    seen = Hashtbl.create 256;
    latest = Array.make (max 1 (List.length classes)) (-1);
    cur_time = 0;
    cur_pc = -1;
    dropped_edges = 0;
    dropped_sources = 0;
  }

let set_context t ctx = t.context <- ctx

let set_pos t ~time ~pc =
  t.cur_time <- time;
  t.cur_pc <- pc

let set_dropped t ~edges ~sources =
  t.dropped_edges <- edges;
  t.dropped_sources <- sources

let node_count t = t.n_nodes
let edge_count t = t.n_edges

let in_range t tag = tag >= 0 && tag < Array.length t.latest

let add_edge t ~from_ ~to_ =
  if from_ >= 0 && from_ <> to_ then begin
    t.edges <- { Store.e_from = from_; e_to = to_ } :: t.edges;
    t.n_edges <- t.n_edges + 1
  end

(* [inputs] are the classes whose latest commits feed this one; [commits]
   tells whether the node becomes its own class's latest (violations are
   sink observations, they commit nothing). *)
let append t ~kind ~tag ~time ~pc ~a ~b ~origin ~addr ~inputs ~commits =
  let key =
    { k_kind = kind; k_tag = tag; k_a = a; k_b = b; k_origin = origin;
      k_addr = addr; k_pc = pc }
  in
  match Hashtbl.find_opt t.seen key with
  | Some p -> p.p_count <- p.p_count + 1
  | None ->
      let id = t.n_nodes in
      let p =
        { p_kind = kind; p_tag = tag; p_time = time; p_pc = pc; p_a = a;
          p_b = b; p_origin = origin; p_addr = addr; p_count = 1 }
      in
      t.nodes <- p :: t.nodes;
      t.n_nodes <- id + 1;
      Hashtbl.add t.seen key p;
      (* Chain edge first, then input edges, deduped against each other
         (a merge whose input is its own class is just the chain). *)
      let chain = if in_range t tag then t.latest.(tag) else -1 in
      add_edge t ~from_:chain ~to_:id;
      List.iter
        (fun input ->
          if in_range t input then begin
            let src = t.latest.(input) in
            if src <> chain then add_edge t ~from_:src ~to_:id
          end)
        inputs;
      if commits && in_range t tag then t.latest.(tag) <- id

let add_seed t ~origin ?(addr = -1) ~time ~tag () =
  append t ~kind:Store.Seed ~tag ~time ~pc:t.cur_pc ~a:(-1) ~b:(-1) ~origin
    ~addr ~inputs:[] ~commits:true

let add_merge t ~a ~b ~result =
  append t ~kind:Store.Merge ~tag:result ~time:t.cur_time ~pc:t.cur_pc ~a ~b
    ~origin:"" ~addr:(-1) ~inputs:[ a; b ] ~commits:true

let add_declass t ~from ~result =
  append t ~kind:Store.Declass ~tag:result ~time:t.cur_time ~pc:t.cur_pc
    ~a:from ~b:(-1) ~origin:"" ~addr:(-1) ~inputs:[ from ] ~commits:true

let add_via t ~channel ~tag =
  append t ~kind:Store.Via ~tag ~time:t.cur_time ~pc:t.cur_pc ~a:(-1) ~b:(-1)
    ~origin:channel ~addr:(-1) ~inputs:[] ~commits:true

let add_violation t ~what ~pc ~time ~tag =
  append t ~kind:Store.Violation ~tag ~time ~pc ~a:(-1) ~b:(-1) ~origin:what
    ~addr:(-1) ~inputs:[ tag ] ~commits:false

let finish t =
  let nodes = Array.make t.n_nodes None in
  List.iteri
    (fun i p -> nodes.(t.n_nodes - 1 - i) <- Some p)
    t.nodes;
  let nodes =
    Array.mapi
      (fun id p ->
        match p with
        | None -> assert false
        | Some p ->
            {
              Store.n_id = id;
              n_kind = p.p_kind;
              n_tag = p.p_tag;
              n_time = p.p_time;
              n_pc = p.p_pc;
              n_a = p.p_a;
              n_b = p.p_b;
              n_origin = p.p_origin;
              n_addr = p.p_addr;
              n_count = p.p_count;
            })
      nodes
  in
  {
    Store.meta =
      {
        Store.classes = Array.copy t.classes;
        context = t.context;
        dropped_edges = t.dropped_edges;
        dropped_sources = t.dropped_sources;
      };
    nodes;
    edges = Array.of_list (List.rev t.edges);
  }
