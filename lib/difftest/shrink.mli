(** Delta-debugging shrinker: reduce a failing program to a minimal
    reproducer while a caller-supplied predicate keeps failing.

    Three passes run to a fixpoint: block-level chunk deletion (ddmin
    style, halving chunk sizes), structural simplification (a guard, loop
    or call collapses to its straight-line body), and per-instruction
    deletion inside block bodies. The result is 1-minimal at block and
    instruction granularity: removing any single remaining block or body
    instruction makes the failure disappear. *)

type stats = {
  evals : int;  (** Predicate evaluations spent. *)
  from_blocks : int;
  from_insns : int;
  to_blocks : int;
  to_insns : int;
}

val minimize :
  ?max_evals:int -> (Prog.t -> bool) -> Prog.t -> Prog.t * stats
(** [minimize pred prog] with [pred prog = true] ("still fails"). The
    predicate must be deterministic. [max_evals] (default 2000) bounds the
    work; the best program found so far is returned when exhausted. *)
