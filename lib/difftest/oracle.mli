(** The three-way differential oracle: every program runs on the naive
    golden-model interpreter ({!Rv32.Golden}), the plain VP core and the
    VP+ core with DIFT tracking, and all three must agree on registers,
    scratch memory and the retired-instruction count.

    Disagreement golden-vs-VP is an ISS semantics bug; VP-vs-VP+ is a
    transparency bug (tag tracking changed an architectural value). *)

type stop =
  | Exited of int  (** Exit ecall with the given code. *)
  | Out_of_budget  (** Instruction budget exhausted. *)
  | Trapped  (** A trap, breakpoint, or simulator exception. *)

type outcome = {
  stop : stop;
  regs : int array;  (** x1..x31 at indices 1..31 (index 0 unused). *)
  mem : string;  (** The scratch buffer bytes. *)
  instret : int;
  tags : (int array * int array) option;
      (** Taint state of a tracked run: (register tags x1..x31 at indices
          1..31, per-byte tags of the scratch buffer). [None] on the
          golden model and untracked runs; {!agree} compares tags only
          when both sides carry them. *)
}

type result3 = {
  golden : outcome;
  vp : outcome;
  vpp : outcome;
  violations : int;  (** Violations the VP+ monitor recorded. *)
  checks : int;  (** Clearance checks the VP+ engine performed. *)
  declassifications : int;  (** Declassification events (must be 0 here). *)
}

val max_insns : int
(** Per-run instruction budget (shared by all three models). *)

val agree : outcome -> outcome -> bool
(** Full architectural agreement — including taint tags when both
    outcomes carry them. Two [Trapped] outcomes agree regardless of
    post-trap state (the models stop at different points of the trap
    path). *)

val explain : outcome -> outcome -> string option
(** Human-readable first difference, [None] if the outcomes agree. *)

val run_golden : Rv32_asm.Image.t -> outcome

val unrestricted_policy : unit -> Dift.Policy.t
(** The default single-class policy {!run_vp} falls back to; exposed so a
    forensic re-run can build a tracer over a structurally identical
    lattice. *)

type warm
(** A {!Vp.Soc.boot_snapshot} blob for the configuration {!run} uses on
    its untracked VP leg (default SoC options, {!unrestricted_policy}).
    An immutable string under the hood — share one value across domains. *)

val warm_boot : unit -> warm
(** Boot a throwaway default-configuration untracked SoC to its post-reset
    settlement point and serialise it. Campaign drivers call this once in
    the parent and hand the blob to every worker ({!run} [?warm]). *)

val run_vp :
  tracking:bool ->
  ?block_cache:bool ->
  ?fast_path:bool ->
  ?engine:Rv32.Core.engine ->
  ?policy:Dift.Policy.t ->
  ?trace:(int -> Rv32.Insn.t -> unit) ->
  ?tracer:Trace.Tracer.t ->
  ?quantum:int ->
  ?warm:warm ->
  Rv32_asm.Image.t ->
  outcome * (int * int * int)
(** One VP flavour; returns the outcome and the monitor's
    (violations, checks, declassifications). Without [policy] an
    unrestricted single-class policy is used. The monitor runs in [Record]
    mode so checks never alter execution. [block_cache] / [fast_path]
    (default true) forward to {!Vp.Soc.create} — run with
    [~block_cache:false] to get a reference single-step execution for
    cache-vs-nocache differential testing. [engine] selects the core's
    execution engine (default {!Rv32.Core.Threaded_superblock}) for
    engine-vs-engine differential testing. [tracer] attaches the tracing
    subsystem to the SoC (forensic replay of reproducers). [quantum]
    forwards to {!Vp.Soc.create} (snapshot-vs-straight comparisons need
    both runs on the same time-sync grid). [warm] stamps a boot snapshot
    into the fresh SoC with {!Vp.Soc.warm_start} before the image load —
    only valid when the call's configuration matches {!warm_boot}'s
    (untracked, default options, unrestricted policy); architecturally
    identical to the cold path. *)

val snap_quantum : int
(** Time-sync quantum used by {!run_vp_snapshot}; a straight run to be
    compared against it must pass the same value to {!run_vp}. *)

val run_vp_snapshot :
  tracking:bool ->
  ?policy:Dift.Policy.t ->
  ?stride:int ->
  Rv32_asm.Image.t ->
  outcome * (int * int * int)
(** The tracked VP run chopped into [stride]-instruction segments: at each
    boundary the platform is paused, serialised with {!Vp.Soc.save},
    restored into a brand-new SoC with {!Vp.Soc.restore}, and continued
    there. The final outcome must agree with an uninterrupted {!run_vp}
    at {!snap_quantum} — any disagreement is a snapshot machinery bug.
    Monitor counters are summed across segments. *)

val run :
  ?engine:Rv32.Core.engine ->
  ?policy:Dift.Policy.t ->
  ?trace:(int -> Rv32.Insn.t -> unit) ->
  ?warm:warm ->
  Rv32_asm.Image.t ->
  result3
(** All three models. [engine] selects the execution engine of both VP
    legs (default {!Rv32.Core.Threaded_superblock}); [policy] applies to
    the VP+ run
    only (the plain VP runs check-free on the same lattice); [trace] is
    installed on the VP+ run (coverage); [warm] warm-starts the plain-VP
    leg from a shared boot snapshot (the VP+ leg always cold-boots: its
    per-task policy changes the initial tag state — the blob itself is
    engine-agnostic, it holds only architectural state). *)
