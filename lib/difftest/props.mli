(** Taint-metamorphic properties of the DIFT engine, beyond transparency.

    Each property runs the VP+ flavour with a purpose-built policy
    (monitor in [Record] mode, no execution clearances, so the underlying
    computation is identical across runs) and inspects the final taint
    state of the registers and the scratch buffer. *)

type verdict = Ok | Failed of string

val purity : Rv32_asm.Image.t -> verdict
(** Untainted-input purity ("no taint from nowhere"): with every input at
    the lattice bottom and no checks configured, no register or RAM byte
    may end tainted, the monitor must record zero violations, and zero
    declassifications. *)

val monotonic : Rng.t -> Rv32_asm.Image.t -> verdict
(** Taint monotonicity: classify a random scratch-buffer range A as
    tainted, then A plus a second range B. The set of tainted outputs
    (registers and scratch bytes) of the A-run must be a subset of the
    A∪B-run — adding taint to an input can only widen tainted outputs. *)

val trap_entry_pub : Rv32_asm.Image.t -> verdict
(** Trap-delivery taint isolation: with the scratch buffer classified HC,
    run the program (whose scaffold installs a trap handler and whose
    blocks may trap on tainted data) and require the trap CSRs — mepc,
    mcause, mtval, mtvec — to end at tags that flow to LC. Trap entry
    writes architectural control-plane state; were it to inherit the
    trapping instruction's data tag, a handler could launder secrets. *)

val declass_free : Oracle.result3 -> verdict
(** Declassification soundness for this workload: generated programs touch
    no declassifying peripheral (the AES engine), so any [Declassified]
    event in the monitor log is taint dropped without a sanctioned source. *)
