(** Coverage-guided structured program and policy generation.

    Programs mix straight-line blocks, forward-branch guards (all six
    branch kinds), bounded counted loops, JAL/JALR call patterns and
    M-extension edge-operand blocks (division by zero, [INT_MIN / -1],
    MULH sign cases). Memory traffic is confined to the 256-byte scratch
    buffer, so programs are trap-free by construction.

    Generation weights consult a {!Coverage} table: opcodes with no
    dynamic executions yet get their weight boosted, driving the corpus
    toward full RV32IM coverage. *)

val program : Rng.t -> Coverage.t -> size:int -> Prog.t
(** [program rng cov ~size] generates [size] blocks (~3 instructions per
    block on average). *)

val policy : Rng.t -> Rv32_asm.Image.t -> Dift.Policy.t
(** A random security policy over one of the paper's IFP lattices
    (IFP-1/2/3): random classification regions over the image, optional
    output clearances and execution-unit clearances. The fetch clearance,
    when enabled, is the lattice top so the program region always runs. *)
