(** Dynamic opcode and branch coverage, collected through the core's
    per-instruction trace hook and fed back into generation weights.

    Branch direction is inferred from consecutive trace pcs: a traced
    conditional branch at [pc] was taken iff the next traced pc differs
    from [pc + 4]. *)

type t

val create : unit -> t

val note : t -> pc:int -> Rv32.Insn.t -> unit
(** Record one executed instruction (call in trace order). *)

val hook : t -> int -> Rv32.Insn.t -> unit
(** [note] shaped for {!Vp.Soc.cpu} [cpu_set_trace]. *)

val merge : into:t -> t -> unit
(** Add another table's counts (per-program tables into the global one). *)

val count : t -> string -> int
(** Executions of an opcode mnemonic (see {!Rv32.Insn.opcode}). *)

val total : t -> int
(** Total instructions recorded. *)

val covered : t -> string list
(** RV32IM mnemonics executed at least once, in table order. *)

val missing : t -> string list
(** RV32IM mnemonics never executed ({!Rv32.Insn.rv32im_opcodes} order). *)

val taken : t -> string -> int
(** Taken executions of a branch mnemonic. *)

val not_taken : t -> string -> int

val save : Snapshot.Codec.writer -> t -> unit
(** Serialise for a campaign checkpoint: the count tables as sorted
    (key, count) lists plus the total. An unresolved trailing branch
    ([note]'s pending direction) is dropped, exactly as {!merge} drops
    it — a reloaded table merges identically to the live one. *)

val load : Snapshot.Codec.reader -> t
(** Inverse of {!save}; raises [Snapshot.Codec.Corrupt] on malformed
    input. *)

val pp : Format.formatter -> t -> unit
(** The per-opcode coverage table (counts, branch taken/not-taken split,
    missing opcodes). *)
