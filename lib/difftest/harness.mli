(** The coverage-guided differential-testing loop.

    Each iteration generates a structured random program (weights fed by
    the global coverage table), runs the three-way {!Oracle}, checks the
    {!Props} metamorphic properties on a subsample, and — when anything
    fails — shrinks the program to a minimal reproducer and renders it as
    a standalone [.s] file. *)

type config = {
  seed : int;
  programs : int;
  size : int;  (** Blocks per program (~3 instructions each). *)
  shrink : bool;  (** Minimise failing programs (default true). *)
  shrink_dir : string option;
      (** Where to write reproducer [.s] files; [None] keeps them only in
          the report. *)
  graph_dir : string option;
      (** Where to write each reproducer's IFT provenance-graph store
          ([repro_*.iftg], from the same tracked forensic replay); [None]
          disables graph capture. Query the stores with
          [vp_run analyze --store DIR]. *)
  props_every : int;  (** Check metamorphic properties every Nth program. *)
  inject : string option;
      (** Fault injection for end-to-end validation of the
          detect-shrink-report pipeline: treat any program executing this
          opcode mnemonic as failing (a stand-in for a real tag-propagation
          bug in that instruction). *)
  cache_diff : bool;
      (** Additionally re-run every program with the decoded basic-block
          cache and untainted fast path disabled (both VP flavours) and
          require architectural agreement with the cached runs — a
          differential check of the dispatch machinery itself (see
          [docs/perf.md]). Off by default: it doubles the oracle cost. *)
  snap_diff : bool;
      (** Additionally run every program chopped into checkpointed
          segments (pause, {!Vp.Soc.save}, restore into a fresh SoC,
          continue) and require architectural agreement with an
          uninterrupted run on the same time-sync grid — a differential
          check of the snapshot machinery. Off by default: it roughly
          triples the oracle cost. *)
  engines : Rv32.Core.engine list;
      (** Execution engines under test (default [[Threaded_superblock]]).
          The head runs every base oracle leg; each engine in the tail is
          additionally cross-checked against the head on both VP flavours
          — byte-identical registers, scratch memory, instret {e and
          taint tags} — a differential proof of the threaded-code block
          compiler (and its superblock/inline-cache tier) against the
          interpreter. Each extra entry adds roughly one VP cost per
          program. *)
  jobs : int;
      (** Worker domains running shards concurrently (default 1).
          [jobs <= 1] takes the exact sequential code path (no domains
          spawned). The report is byte-identical for every value: the
          campaign is split into fixed shards whose structure depends
          only on [programs] and [shard_size] (see
          {!Parallelkit.Campaign}), each shard runs from its own derived
          RNG and coverage table, and the merge is order-independent. *)
  warm_start : bool;
      (** Boot the SoC to its post-reset settlement point once in the
          parent, serialise it ({!Oracle.warm_boot}) and warm-start the
          plain-VP leg of every oracle call from the shared blob
          (default true). Architecturally identical to cold boots. *)
  shard_size : int;
      (** Programs per shard (default 25) — the parallel grain. Part of
          the determinism contract: changing it changes the generated
          stream (campaigns of at most one shard excepted). *)
  checkpoint : string option;
      (** Checkpoint completed-shard results to this path: after every
          shard finishes, the DIFTVPCP container
          ({!Parallelkit.Checkpoint}) is atomically republished
          (temp file + rename), so a killed campaign loses at most the
          shards still in flight. [None] (default) disables. *)
  resume : string option;
      (** Resume from a checkpoint written by an earlier run of the
          {e same} campaign: shards recorded there are decoded instead
          of re-run. The checkpoint's fingerprint must match every
          stream-determining config field (seed, programs, size, shrink
          settings, props_every, inject, cache/snap diff, engines,
          shard_size) — [jobs] and [warm_start] may differ freely; a
          mismatch raises {!Parallelkit.Checkpoint.Mismatch}, a corrupt
          or truncated file [Snapshot.Codec.Corrupt], in both cases
          before any oracle work runs. The merged report is
          byte-identical to an uninterrupted run's. Combine with
          [checkpoint] (typically the same path) to keep checkpointing
          the still-pending shards. *)
}

val default : config
(** seed 0x5eed, 200 programs of 30 blocks, shrinking on, no file output
    (no reproducer or graph-store directories), properties every 5th
    program, no injection, no cache / snapshot / engine differential
    (engines = [[Threaded_superblock]] only); sequential ([jobs = 1]),
    warm-start on, 25-program shards, no checkpointing or resume. *)

type failure = {
  f_kind : string;
      (** ["golden-vs-vp"], ["transparency"], ["purity"], ["monotonicity"],
          ["trap-entry-taint"], ["declassification"], ["cache-vs-nocache"],
          ["snapshot-vs-straight"], ["engine-diff"] or
          ["injected:<opcode>"]. *)
  f_detail : string;  (** First observed difference / property message. *)
  f_asm : string;  (** The (shrunk) reproducer as [.s] source. *)
  f_file : string option;  (** Path written, when [shrink_dir] is set. *)
  f_blocks : int;
  f_insns : int;
  f_evals : int;  (** Oracle evaluations the shrinker spent. *)
  f_forensics : string option;
      (** Rendered {!Trace.Forensics} report from replaying the shrunk
          reproducer on the tracked VP with tracing attached (execution
          window + provenance). [None] if the replay recorded nothing or
          itself failed. Written as [repro_*.forensics.txt] next to the
          [.s] file when [shrink_dir] is set. *)
  f_graph : string option;
      (** Path of the [repro_*.iftg] graph store written from the same
          replay, when [graph_dir] is set. *)
}

type report = {
  programs : int;
  completed : int;  (** Ran to the exit ecall on all three models. *)
  golden_mismatches : int;  (** Golden model vs plain VP (must be 0). *)
  transparency_mismatches : int;  (** Plain VP vs VP+ (must be 0). *)
  purity_failures : int;  (** Taint from nowhere (must be 0). *)
  monotonicity_failures : int;  (** Non-monotone taint (must be 0). *)
  trap_taint_failures : int;
      (** Trap CSRs tainted by trap entry ({!Props.trap_entry_pub},
          must be 0). *)
  declass_violations : int;  (** Unsanctioned declassification (must be 0). *)
  cache_mismatches : int;
      (** Cached vs single-step execution disagreements, counted only when
          [cache_diff] is set (must be 0). *)
  snapshot_mismatches : int;
      (** Checkpointed vs uninterrupted execution disagreements, counted
          only when [snap_diff] is set (must be 0). *)
  engine_mismatches : int;
      (** Engine-vs-engine disagreements (state or tags), counted only
          when [engines] lists more than one engine (must be 0). *)
  injected_hits : int;  (** Programs the injected fault flagged. *)
  violations : int;  (** Policy violations recorded (informational). *)
  checks : int;  (** Clearance checks performed (informational). *)
  errors : int;  (** Harness-level exceptions (must be 0). *)
  coverage : Coverage.t;
  failures : failure list;  (** Newest first. *)
}

val healthy : report -> bool
(** Every must-be-zero counter is zero. Injected hits are excluded — they
    are deliberate; callers demanding a clean exit should also check
    [injected_hits = 0]. *)

val run : ?config:config -> unit -> report
(** Run the campaign: shard the program range, restore any shards a
    resumed checkpoint already completed, run the rest on a
    {!Parallelkit.Pool} of [config.jobs] work-stealing domains
    (sequentially in-process when [jobs <= 1]), and merge the shard
    outputs in shard-index order. The report — counters, merged
    coverage, failure list and shrunk reproducer sources — is
    byte-identical for every [jobs] value and across any
    kill/checkpoint/resume split; the tier-1 determinism tests pin both.
    Shrinking runs inside the worker that found the failure. *)

val pp_report : Format.formatter -> report -> unit
