type stop = Exited of int | Out_of_budget | Trapped

type outcome = {
  stop : stop;
  regs : int array;
  mem : string;
  instret : int;
  tags : (int array * int array) option;
}

type result3 = {
  golden : outcome;
  vp : outcome;
  vpp : outcome;
  violations : int;
  checks : int;
  declassifications : int;
}

let max_insns = 50_000
let ram_size = 1 lsl 20

(* Taint state is compared only when both sides observed it (tracked
   runs); a tracked-vs-untracked comparison stays purely architectural. *)
let tags_agree a b =
  match (a.tags, b.tags) with
  | Some (ra, ma), Some (rb, mb) -> ra = rb && ma = mb
  | _ -> true

let agree a b =
  match (a.stop, b.stop) with
  | Trapped, Trapped -> true
  | sa, sb ->
      sa = sb && a.regs = b.regs
      && String.equal a.mem b.mem
      && a.instret = b.instret && tags_agree a b

let explain a b =
  if agree a b then None
  else if a.stop <> b.stop then
    let name = function
      | Exited c -> Printf.sprintf "exited(%d)" c
      | Out_of_budget -> "out-of-budget"
      | Trapped -> "trapped"
    in
    Some (Printf.sprintf "stop reason: %s vs %s" (name a.stop) (name b.stop))
  else
    let reg_diff = ref None in
    for i = 31 downto 1 do
      if a.regs.(i) <> b.regs.(i) then reg_diff := Some i
    done;
    match !reg_diff with
    | Some i ->
        Some
          (Printf.sprintf "%s: 0x%08x vs 0x%08x" (Rv32.Reg.name i) a.regs.(i)
             b.regs.(i))
    | None ->
        if not (String.equal a.mem b.mem) then
          let j = ref 0 in
          while Char.equal a.mem.[!j] b.mem.[!j] do incr j done;
          Some
            (Printf.sprintf "scratch[%d]: 0x%02x vs 0x%02x" !j
               (Char.code a.mem.[!j]) (Char.code b.mem.[!j]))
        else if a.instret <> b.instret then
          Some (Printf.sprintf "instret: %d vs %d" a.instret b.instret)
        else
          match (a.tags, b.tags) with
          | Some (ra, mb1), Some (rb, mb2) ->
              let reg_diff = ref None in
              for i = 31 downto 1 do
                if ra.(i) <> rb.(i) then reg_diff := Some i
              done;
              (match !reg_diff with
              | Some i ->
                  Some
                    (Printf.sprintf "tag of %s: %d vs %d" (Rv32.Reg.name i)
                       ra.(i) rb.(i))
              | None ->
                  let j = ref 0 in
                  while !j < Array.length mb1 && mb1.(!j) = mb2.(!j) do
                    incr j
                  done;
                  if !j < Array.length mb1 then
                    Some
                      (Printf.sprintf "tag of scratch[%d]: %d vs %d" !j
                         mb1.(!j) mb2.(!j))
                  else None)
          | _ -> None

let buf_window img =
  let buf = Rv32_asm.Image.symbol img "buf" in
  (buf, Prog.buf_size)

let run_golden img =
  let g = Rv32.Golden.create ~mem_base:Vp.Soc.ram_base ~mem_size:ram_size in
  Rv32.Golden.load g ~addr:img.Rv32_asm.Image.org
    (Bytes.to_string img.Rv32_asm.Image.code);
  Rv32.Golden.set_pc g
    (match Rv32_asm.Image.symbol_opt img "_start" with
    | Some a -> a
    | None -> img.Rv32_asm.Image.org);
  let stop_raw, n = Rv32.Golden.run g ~max_insns in
  let stop =
    match stop_raw with
    | Rv32.Golden.Exited c -> Exited c
    | Rv32.Golden.Limit -> Out_of_budget
    | Rv32.Golden.Trap _ -> Trapped
  in
  let regs = Array.init 32 (fun i -> if i = 0 then 0 else Rv32.Golden.reg g i) in
  let buf, len = buf_window img in
  let mem = String.init len (fun i -> Char.chr (Rv32.Golden.mem_byte g (buf + i))) in
  { stop; regs; mem; instret = n; tags = None }

let unrestricted_policy () =
  let lat = Dift.Lattice.make_exn ~classes:[ "ANY" ] ~flows:[] in
  Dift.Policy.unrestricted lat ~default_tag:0

type warm = string

(* The boot snapshot covers only the configuration [run] uses for its
   untracked VP leg: default SoC options, unrestricted single-class
   policy. VP+ legs get a fresh random policy per task (different default
   tags change the initial tag state), so one shared blob cannot serve
   them. *)
let warm_boot () =
  let policy = unrestricted_policy () in
  let monitor =
    Dift.Monitor.create ~mode:Dift.Monitor.Record policy.Dift.Policy.lattice
  in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:false () in
  Vp.Soc.boot_snapshot soc

let run_vp ~tracking ?(block_cache = true) ?(fast_path = true) ?engine ?policy
    ?trace ?tracer ?quantum ?warm img =
  let policy =
    match policy with Some p -> p | None -> unrestricted_policy ()
  in
  let monitor =
    Dift.Monitor.create ~mode:Dift.Monitor.Record policy.Dift.Policy.lattice
  in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking ~block_cache ~fast_path ?engine
      ?tracer ?quantum ()
  in
  (match warm with Some blob -> Vp.Soc.warm_start soc blob | None -> ());
  Vp.Soc.load_image soc img;
  soc.Vp.Soc.cpu.Vp.Soc.cpu_set_trace trace;
  let stop =
    match Vp.Soc.run_for_instructions soc max_insns with
    | Rv32.Core.Exited c -> Exited c
    | Rv32.Core.Insn_limit -> Out_of_budget
    | Rv32.Core.Breakpoint | Rv32.Core.Running -> Trapped
    | exception _ -> Trapped
  in
  let regs =
    Array.init 32 (fun i -> if i = 0 then 0 else soc.Vp.Soc.cpu.Vp.Soc.cpu_get_reg i)
  in
  let buf, len = buf_window img in
  let base = buf - Vp.Soc.ram_base in
  let mem =
    String.init len (fun i -> Char.chr (Vp.Memory.read_byte soc.Vp.Soc.memory (base + i)))
  in
  let tags =
    if tracking then
      Some
        ( Array.init 32 (fun i ->
              if i = 0 then 0 else soc.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag i),
          Array.init len (fun i ->
              Vp.Memory.read_tag soc.Vp.Soc.memory (base + i)) )
    else None
  in
  ( { stop; regs; mem; instret = soc.Vp.Soc.cpu.Vp.Soc.cpu_instret (); tags },
    ( Dift.Monitor.violation_count monitor,
      Dift.Monitor.check_count monitor,
      Dift.Monitor.declassification_count monitor ) )

(* Snapshot-vs-straight differential: the checkpointed run pauses every
   [stride] instructions, serialises the whole platform, restores the
   snapshot into a brand-new SoC and continues there — so every segment
   boundary exercises the full save/restore cycle. Both this and the
   straight run it is compared against must use the same (small) quantum:
   pauses land on time-sync boundaries, and the quantum fixes where those
   are. *)
let snap_quantum = 64

let run_vp_snapshot ~tracking ?policy ?(stride = 200) img =
  let policy =
    match policy with Some p -> p | None -> unrestricted_policy ()
  in
  let fresh () =
    let monitor =
      Dift.Monitor.create ~mode:Dift.Monitor.Record policy.Dift.Policy.lattice
    in
    let soc =
      Vp.Soc.create ~policy ~monitor ~tracking ~quantum:snap_quantum ()
    in
    Vp.Soc.load_image soc img;
    (soc, monitor)
  in
  let totals = ref (0, 0, 0) in
  let add m =
    let v, c, d = !totals in
    totals :=
      ( v + Dift.Monitor.violation_count m,
        c + Dift.Monitor.check_count m,
        d + Dift.Monitor.declassification_count m )
  in
  let rec cycle (soc, mon) =
    Vp.Soc.pause_at soc (soc.Vp.Soc.cpu.Vp.Soc.cpu_instret () + stride);
    Vp.Soc.run soc;
    if Vp.Soc.paused soc then begin
      let snap = Vp.Soc.save soc in
      add mon;
      let soc', mon' = fresh () in
      Vp.Soc.restore soc' snap;
      soc'.Vp.Soc.cpu.Vp.Soc.cpu_set_max max_insns;
      Vp.Soc.start soc';
      soc'.Vp.Soc.cpu.Vp.Soc.cpu_clear_paused ();
      cycle (soc', mon')
    end
    else begin
      add mon;
      soc
    end
  in
  let first = fresh () in
  (fst first).Vp.Soc.cpu.Vp.Soc.cpu_set_max max_insns;
  Vp.Soc.start (fst first);
  match cycle first with
  | exception _ ->
      ( { stop = Trapped; regs = Array.make 32 0; mem = ""; instret = 0;
          tags = None },
        !totals )
  | soc ->
      let stop =
        match soc.Vp.Soc.cpu.Vp.Soc.cpu_exit () with
        | Rv32.Core.Exited c -> Exited c
        | Rv32.Core.Insn_limit -> Out_of_budget
        | Rv32.Core.Breakpoint | Rv32.Core.Running -> Trapped
      in
      let regs =
        Array.init 32 (fun i ->
            if i = 0 then 0 else soc.Vp.Soc.cpu.Vp.Soc.cpu_get_reg i)
      in
      let buf, len = buf_window img in
      let base = buf - Vp.Soc.ram_base in
      let mem =
        String.init len (fun i ->
            Char.chr (Vp.Memory.read_byte soc.Vp.Soc.memory (base + i)))
      in
      let tags =
        if tracking then
          Some
            ( Array.init 32 (fun i ->
                  if i = 0 then 0
                  else soc.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag i),
              Array.init len (fun i ->
                  Vp.Memory.read_tag soc.Vp.Soc.memory (base + i)) )
        else None
      in
      ( { stop; regs; mem; instret = soc.Vp.Soc.cpu.Vp.Soc.cpu_instret ();
          tags },
        !totals )

let run ?engine ?policy ?trace ?warm img =
  let golden = run_golden img in
  let vp, _ = run_vp ~tracking:false ?engine ?warm img in
  let vpp, (violations, checks, declassifications) =
    run_vp ~tracking:true ?engine ?policy ?trace img
  in
  { golden; vp; vpp; violations; checks; declassifications }
