(** Structured random-program IR for the differential tester.

    A program is a list of self-contained {!block}s between a fixed
    prologue (trap-handler installation, register seeding, scratch-buffer
    base in x28/t3) and a fixed epilogue (exit ecall, subroutine bodies,
    the machine-trap handler, the 256-byte scratch buffer). Blocks are
    the unit of shrinking: any sublist of blocks is again a well-formed
    program — control flow never crosses a block boundary, so deleting
    blocks cannot leave a dangling label.

    The prologue points mtvec at a fixed handler so generated trap
    instructions (ecall, ebreak, privileged CSR access from user mode)
    resume deterministically: the handler skips the trapping instruction,
    except for an exit ecall (a7 = 93), which it re-issues from machine
    mode — making the exit convention privilege-independent. {!Mret}
    blocks exercise privilege unstacking; because a trap handler's mret
    leaves MPP at user mode, the second and later [Mret] blocks drop the
    program into U-mode, where privileged CSR accesses themselves trap.

    Register discipline: bodies use only the working registers x5..x15;
    x28 (t3) holds the scratch base, x29 (t4) the loop counter, x30 (t5)
    the indirect-call/mret target, x31 (t6) is handler-owned (saved in
    mscratch across the handler body), x1 (ra) the link register.
    Generated CSR writes target only mscratch — mtvec or mepc would wedge
    the scaffold. *)

type branch = Beq | Bne | Blt | Bge | Bltu | Bgeu

type block =
  | Straight of Rv32.Insn.t list
      (** Straight-line instructions (ALU, scratch-confined memory ops). *)
  | Guard of { kind : branch; rs1 : int; rs2 : int; body : Rv32.Insn.t list }
      (** A forward conditional branch over [body] (taken = body skipped). *)
  | Loop of { count : int; body : Rv32.Insn.t list }
      (** A bounded counted loop: x29 runs from [count] down to 0. *)
  | Call of { via_jalr : bool; body : Rv32.Insn.t list }
      (** A call to a leaf subroutine holding [body]; direct [jal ra] or,
          with [via_jalr], [la x30, fn; jalr ra, 0(x30)]. *)
  | Mret
      (** [la x30, cont; csrw mepc, x30; mret; cont:] — a software
          mret returning to the next block, exercising mstatus privilege
          unstacking. In U-mode the csrw and mret both trap and are
          skipped by the handler, so the block is well-formed at any
          privilege. *)

type t = block list

val buf_reg : int
(** x28 — scratch-buffer base register. *)

val buf_size : int
(** Scratch buffer length in bytes (256). *)

val wregs : int list
(** The working registers x5..x15. *)

val li_insns : int -> int -> Rv32.Insn.t list
(** [li_insns rd v]: the 1–2 real instructions materialising constant [v]
    (same hi/lo split as {!Rv32_asm.Asm.li}), for edge-operand blocks. *)

val body_of : block -> Rv32.Insn.t list
(** The generated instructions inside a block (not the scaffolding). *)

val insn_count : t -> int
(** Generated instructions across all blocks (bodies only, excluding the
    fixed block scaffolding and prologue/epilogue). *)

val block_count : t -> int

val emit : Rv32_asm.Asm.t -> t -> unit
(** Emit prologue, blocks, epilogue, subroutines and scratch data into an
    assembler buffer. *)

val assemble : t -> Rv32_asm.Image.t

val to_asm : ?banner:string list -> t -> string
(** Standalone [.s] source of the program (parseable back with
    {!Rv32_asm.Parser}; behaviourally identical to {!assemble}). [banner]
    lines are emitted as leading comments. Raises [Failure] if the emitted
    text does not re-assemble — emitting broken reproducers is a bug. *)
