module A = Rv32_asm.Asm
module I = Rv32.Insn
module S = Rv32_asm.Source

type branch = Beq | Bne | Blt | Bge | Bltu | Bgeu

type block =
  | Straight of I.t list
  | Guard of { kind : branch; rs1 : int; rs2 : int; body : I.t list }
  | Loop of { count : int; body : I.t list }
  | Call of { via_jalr : bool; body : I.t list }
  | Mret

type t = block list

let buf_reg = 28
let loop_reg = 29
let target_reg = 30
let handler_reg = 31
let buf_size = 256
let wregs = [ 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]
let stack_top = 0x800f_fff0
let seed_value i = 0x1234 * (i + 1)

(* Same hi/lo decomposition as Asm.li, but as a plain instruction list so
   edge-operand constants can live inside shrinkable block bodies. *)
let li_insns rd v =
  if Rv32.Encode.fits_signed ~width:12 v then [ I.ADDI (rd, 0, v) ]
  else
    let v' = v land 0xffffffff in
    let lo = Rv32.Decode.sext ~width:12 v' in
    let hi = (v' - lo) land 0xffffffff in
    I.LUI (rd, hi) :: (if lo <> 0 then [ I.ADDI (rd, rd, lo) ] else [])

let body_of = function
  | Straight b -> b
  | Guard { body; _ } -> body
  | Loop { body; _ } -> body
  | Call { body; _ } -> body
  | Mret -> []

let insn_count t = List.fold_left (fun acc b -> acc + List.length (body_of b)) 0 t
let block_count = List.length

let branch_l = function
  | Beq -> A.beq_l
  | Bne -> A.bne_l
  | Blt -> A.blt_l
  | Bge -> A.bge_l
  | Bltu -> A.bltu_l
  | Bgeu -> A.bgeu_l

let branch_mnemonic = function
  | Beq -> "beq"
  | Bne -> "bne"
  | Blt -> "blt"
  | Bge -> "bge"
  | Bltu -> "bltu"
  | Bgeu -> "bgeu"

let skip_label idx = Printf.sprintf "skip%d" idx
let loop_label idx = Printf.sprintf "loop%d" idx
let fn_label idx = Printf.sprintf "fn%d" idx
let cont_label idx = Printf.sprintf "cont%d" idx

(* The fixed machine-trap handler.  Installed by the prologue, so every
   generated trap instruction (ecall, ebreak, a privileged CSR access
   from user mode) resumes deterministically instead of ending the run:
   the handler skips the trapping instruction (mepc += 4; mret), except
   for an exit ecall (mcause 8 or 11 with a7 = 93), which it re-issues
   from machine mode so the exit convention works from user mode too.
   x31 (t6) is handler-owned scratch, saved across the handler body in
   mscratch — which is also why generated CSR writes go only to mscratch:
   clobbering mtvec or mepc from a block would wedge the program, while a
   clobbered mscratch merely perturbs data both models see identically. *)
let emit_handler p =
  A.label p "trap_vec";
  A.csrrw p 0 Rv32.Csr.mscratch handler_reg;
  A.csrrs p handler_reg Rv32.Csr.mcause 0;
  A.addi p handler_reg handler_reg (-8);
  A.beqz_l p handler_reg "trap_exit_chk";
  A.csrrs p handler_reg Rv32.Csr.mcause 0;
  A.addi p handler_reg handler_reg (-11);
  A.beqz_l p handler_reg "trap_exit_chk";
  A.label p "trap_resume";
  A.csrrs p handler_reg Rv32.Csr.mepc 0;
  A.addi p handler_reg handler_reg 4;
  A.csrrw p 0 Rv32.Csr.mepc handler_reg;
  A.csrrs p handler_reg Rv32.Csr.mscratch 0;
  A.mret p;
  A.label p "trap_exit_chk";
  A.addi p handler_reg 17 (-93);
  A.bnez_l p handler_reg "trap_resume";
  A.ecall p

let emit p blocks =
  A.label p "_start";
  A.la p handler_reg "trap_vec";
  A.csrrw p 0 Rv32.Csr.mtvec handler_reg;
  A.li p 2 stack_top;
  List.iteri (fun i r -> A.li p r (seed_value i)) wregs;
  A.la p buf_reg "buf";
  let funcs = ref [] in
  List.iteri
    (fun idx b ->
      match b with
      | Straight body -> List.iter (A.insn p) body
      | Guard { kind; rs1; rs2; body } ->
          branch_l kind p rs1 rs2 (skip_label idx);
          List.iter (A.insn p) body;
          A.label p (skip_label idx)
      | Loop { count; body } ->
          A.li p loop_reg count;
          A.label p (loop_label idx);
          List.iter (A.insn p) body;
          A.addi p loop_reg loop_reg (-1);
          A.bnez_l p loop_reg (loop_label idx)
      | Call { via_jalr; body } ->
          let f = fn_label idx in
          if via_jalr then begin
            A.la p target_reg f;
            A.jalr p 1 target_reg 0
          end
          else A.call p f;
          funcs := (f, body) :: !funcs
      | Mret ->
          A.la p target_reg (cont_label idx);
          A.csrrw p 0 Rv32.Csr.mepc target_reg;
          A.mret p;
          A.label p (cont_label idx))
    blocks;
  A.nop p;
  A.li p 17 93;
  A.insn p I.ECALL;
  List.iter
    (fun (f, body) ->
      A.label p f;
      List.iter (A.insn p) body;
      A.ret p)
    (List.rev !funcs);
  emit_handler p;
  A.align p 4;
  A.label p "buf";
  for i = 0 to buf_size - 1 do
    A.byte p ((i * 41) land 0xff)
  done

let assemble blocks =
  let p = A.create () in
  emit p blocks;
  A.assemble p

let to_asm ?(banner = []) blocks =
  let s = S.create () in
  let hr = Rv32.Reg.name handler_reg in
  List.iter (S.comment s) banner;
  S.label s "_start";
  S.line s (Printf.sprintf "la %s, trap_vec" hr);
  S.line s (Printf.sprintf "csrw mtvec, %s" hr);
  S.line s (Printf.sprintf "li sp, 0x%x" stack_top);
  List.iteri
    (fun i r -> S.line s (Printf.sprintf "li %s, %d" (Rv32.Reg.name r) (seed_value i)))
    wregs;
  S.line s (Printf.sprintf "la %s, buf" (Rv32.Reg.name buf_reg));
  let funcs = ref [] in
  List.iteri
    (fun idx b ->
      match b with
      | Straight body -> List.iter (S.insn s) body
      | Guard { kind; rs1; rs2; body } ->
          S.line s
            (Printf.sprintf "%s %s, %s, %s" (branch_mnemonic kind)
               (Rv32.Reg.name rs1) (Rv32.Reg.name rs2) (skip_label idx));
          List.iter (S.insn s) body;
          S.label s (skip_label idx)
      | Loop { count; body } ->
          S.line s (Printf.sprintf "li %s, %d" (Rv32.Reg.name loop_reg) count);
          S.label s (loop_label idx);
          List.iter (S.insn s) body;
          S.line s (Printf.sprintf "addi %s, %s, -1" (Rv32.Reg.name loop_reg) (Rv32.Reg.name loop_reg));
          S.line s (Printf.sprintf "bnez %s, %s" (Rv32.Reg.name loop_reg) (loop_label idx))
      | Call { via_jalr; body } ->
          let f = fn_label idx in
          if via_jalr then begin
            S.line s (Printf.sprintf "la %s, %s" (Rv32.Reg.name target_reg) f);
            S.line s (Printf.sprintf "jalr ra, 0(%s)" (Rv32.Reg.name target_reg))
          end
          else S.line s (Printf.sprintf "call %s" f);
          funcs := (f, body) :: !funcs
      | Mret ->
          S.line s
            (Printf.sprintf "la %s, %s" (Rv32.Reg.name target_reg)
               (cont_label idx));
          S.line s (Printf.sprintf "csrw mepc, %s" (Rv32.Reg.name target_reg));
          S.line s "mret";
          S.label s (cont_label idx))
    blocks;
  S.line s "nop";
  S.line s "li a7, 93";
  S.line s "ecall";
  List.iter
    (fun (f, body) ->
      S.label s f;
      List.iter (S.insn s) body;
      S.line s "ret")
    (List.rev !funcs);
  S.label s "trap_vec";
  S.line s (Printf.sprintf "csrw mscratch, %s" hr);
  S.line s (Printf.sprintf "csrr %s, mcause" hr);
  S.line s (Printf.sprintf "addi %s, %s, -8" hr hr);
  S.line s (Printf.sprintf "beqz %s, trap_exit_chk" hr);
  S.line s (Printf.sprintf "csrr %s, mcause" hr);
  S.line s (Printf.sprintf "addi %s, %s, -11" hr hr);
  S.line s (Printf.sprintf "beqz %s, trap_exit_chk" hr);
  S.label s "trap_resume";
  S.line s (Printf.sprintf "csrr %s, mepc" hr);
  S.line s (Printf.sprintf "addi %s, %s, 4" hr hr);
  S.line s (Printf.sprintf "csrw mepc, %s" hr);
  S.line s (Printf.sprintf "csrr %s, mscratch" hr);
  S.line s "mret";
  S.label s "trap_exit_chk";
  S.line s (Printf.sprintf "addi %s, a7, -93" hr);
  S.line s (Printf.sprintf "bnez %s, trap_resume" hr);
  S.line s "ecall";
  S.align s 4;
  S.label s "buf";
  for i = 0 to buf_size - 1 do
    S.byte s ((i * 41) land 0xff)
  done;
  match S.check s with
  | Ok _ -> S.contents s
  | Error msg -> failwith ("Prog.to_asm: emitted source does not assemble: " ^ msg)
