type t = { mutable s : int }

let create ~seed =
  let s = seed land 0xffffffff in
  { s = (if s = 0 then 1 else s) }

let next r =
  let x = r.s in
  let x = x lxor (x lsl 13) land 0xffffffff in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land 0xffffffff in
  r.s <- x;
  x

let int r n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  next r mod n

let range r lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int r (hi - lo + 1)

let bool r = next r land 1 = 1

let choose r = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int r (List.length l))

let weighted r entries =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 entries in
  if total <= 0 then invalid_arg "Rng.weighted: no positive weight";
  let k = int r total in
  let rec pick k = function
    | [] -> assert false
    | (w, x) :: rest -> if k < max 0 w then x else pick (k - max 0 w) rest
  in
  pick k entries
