type stats = {
  evals : int;
  from_blocks : int;
  from_insns : int;
  to_blocks : int;
  to_insns : int;
}

exception Budget

let with_body block body =
  match block with
  | Prog.Straight _ -> Prog.Straight body
  | Prog.Guard g -> Prog.Guard { g with body }
  | Prog.Loop l -> Prog.Loop { l with body }
  | Prog.Call c -> Prog.Call { c with body }
  | Prog.Mret -> Prog.Mret

(* Delete [len] elements at [at]. *)
let delete_range l ~at ~len =
  List.filteri (fun i _ -> i < at || i >= at + len) l

let rec set_nth l i x =
  match l with
  | [] -> []
  | hd :: tl -> if i = 0 then x :: tl else hd :: set_nth tl (i - 1) x

let minimize ?(max_evals = 2000) pred prog =
  let evals = ref 0 in
  let check p =
    if !evals >= max_evals then raise Budget;
    incr evals;
    pred p
  in
  let current = ref prog in
  (* Block-level ddmin: try deleting chunks, halving the chunk size. *)
  let block_pass () =
    let changed = ref false in
    let chunk = ref (max 1 (List.length !current / 2)) in
    while !chunk >= 1 do
      let progress = ref true in
      while !progress do
        progress := false;
        let n = List.length !current in
        let at = ref 0 in
        while !at + !chunk <= n && not !progress do
          let candidate = delete_range !current ~at:!at ~len:!chunk in
          if candidate <> [] && check candidate then begin
            current := candidate;
            changed := true;
            progress := true
          end
          else at := !at + !chunk
        done
      done;
      chunk := !chunk / 2
    done;
    !changed
  in
  (* Structural pass: collapse guards/loops/calls to their bodies. *)
  let structure_pass () =
    let changed = ref false in
    List.iteri
      (fun i b ->
        match b with
        | Prog.Straight _ -> ()
        | _ ->
            let candidate = set_nth !current i (Prog.Straight (Prog.body_of b)) in
            if check candidate then begin
              current := candidate;
              changed := true
            end)
      !current;
    !changed
  in
  (* Instruction-level pass: drop single body instructions. *)
  let insn_pass () =
    let changed = ref false in
    let blocks = Array.of_list !current in
    Array.iteri
      (fun i b ->
        let body = ref (Prog.body_of b) in
        let j = ref 0 in
        while !j < List.length !body do
          let candidate_body = delete_range !body ~at:!j ~len:1 in
          let candidate =
            set_nth !current i (with_body b candidate_body)
          in
          if check candidate then begin
            body := candidate_body;
            current := candidate;
            changed := true
          end
          else incr j
        done)
      blocks;
    !changed
  in
  (try
     let continue_ = ref true in
     while !continue_ do
       let c1 = block_pass () in
       let c2 = structure_pass () in
       let c3 = insn_pass () in
       continue_ := c1 || c2 || c3
     done
   with Budget -> ());
  ( !current,
    {
      evals = !evals;
      from_blocks = Prog.block_count prog;
      from_insns = Prog.insn_count prog;
      to_blocks = Prog.block_count !current;
      to_insns = Prog.insn_count !current;
    } )
