module I = Rv32.Insn

type t = {
  counts : (string, int) Hashtbl.t;
  taken_tbl : (string, int) Hashtbl.t;
  not_taken_tbl : (string, int) Hashtbl.t;
  mutable pending : (int * string) option;
      (* pc and mnemonic of the branch traced last, direction unresolved *)
  mutable total : int;
}

let create () =
  {
    counts = Hashtbl.create 64;
    taken_tbl = Hashtbl.create 8;
    not_taken_tbl = Hashtbl.create 8;
    pending = None;
    total = 0;
  }

let bump tbl key n =
  Hashtbl.replace tbl key (n + try Hashtbl.find tbl key with Not_found -> 0)

let note t ~pc insn =
  (match t.pending with
  | Some (bpc, op) ->
      bump (if pc <> bpc + 4 then t.taken_tbl else t.not_taken_tbl) op 1;
      t.pending <- None
  | None -> ());
  let op = I.opcode insn in
  bump t.counts op 1;
  t.total <- t.total + 1;
  if I.is_branch insn then t.pending <- Some (pc, op)

let hook t pc insn = note t ~pc insn

let merge ~into src =
  Hashtbl.iter (fun k n -> bump into.counts k n) src.counts;
  Hashtbl.iter (fun k n -> bump into.taken_tbl k n) src.taken_tbl;
  Hashtbl.iter (fun k n -> bump into.not_taken_tbl k n) src.not_taken_tbl;
  into.total <- into.total + src.total

let find tbl key = try Hashtbl.find tbl key with Not_found -> 0
let count t op = find t.counts op
let total t = t.total
let covered t = List.filter (fun op -> count t op > 0) I.rv32im_opcodes
let missing t = List.filter (fun op -> count t op = 0) I.rv32im_opcodes
let taken t op = find t.taken_tbl op
let not_taken t op = find t.not_taken_tbl op

(* Checkpoint codec: the three tables as (key, count) lists sorted by
   key, then the total. [pending] is deliberately dropped — a shard's
   unresolved trailing branch is also ignored by [merge], so a table
   that went through a save/load cycle merges identically to one that
   stayed live. *)
let save w t =
  let open Snapshot.Codec in
  let dump tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  let put_tbl tbl =
    put_list w
      (fun w (k, v) ->
        put_string w k;
        put_varint w v)
      (dump tbl)
  in
  put_tbl t.counts;
  put_tbl t.taken_tbl;
  put_tbl t.not_taken_tbl;
  put_varint w t.total

let load r =
  let open Snapshot.Codec in
  let t = create () in
  let get_tbl tbl =
    ignore
      (get_list r (fun r ->
           let k = get_string r in
           let v = get_varint r in
           Hashtbl.replace tbl k v))
  in
  get_tbl t.counts;
  get_tbl t.taken_tbl;
  get_tbl t.not_taken_tbl;
  t.total <- get_varint r;
  t

let pp fmt t =
  let n_cov = List.length (covered t) and n_all = List.length I.rv32im_opcodes in
  Format.fprintf fmt "@[<v>opcode coverage: %d/%d RV32IM opcodes, %d instructions executed@,"
    n_cov n_all t.total;
  List.iter
    (fun op ->
      let n = count t op in
      if List.mem op [ "beq"; "bne"; "blt"; "bge"; "bltu"; "bgeu" ] then
        Format.fprintf fmt "  %-8s %8d  (taken %d / not taken %d)@," op n
          (taken t op) (not_taken t op)
      else Format.fprintf fmt "  %-8s %8d@," op n)
    I.rv32im_opcodes;
  (match missing t with
  | [] -> Format.fprintf fmt "  all RV32IM opcodes covered"
  | ms -> Format.fprintf fmt "  MISSING: %s" (String.concat " " ms));
  Format.fprintf fmt "@]"
