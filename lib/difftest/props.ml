type verdict = Ok | Failed of string

let lc_hc () =
  let lat = Dift.Lattice.confidentiality () in
  ( lat,
    Dift.Lattice.tag_of_name lat "LC",
    Dift.Lattice.tag_of_name lat "HC" )

let run_tagged img policy =
  let monitor =
    Dift.Monitor.create ~mode:Dift.Monitor.Record policy.Dift.Policy.lattice
  in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true () in
  Vp.Soc.load_image soc img;
  ignore (Vp.Soc.run_for_instructions soc Oracle.max_insns);
  (soc, monitor)

let reg_tags soc =
  Array.init 32 (fun i ->
      if i = 0 then 0 else soc.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag i)

let buf_tags soc img =
  let base = Rv32_asm.Image.symbol img "buf" - Vp.Soc.ram_base in
  Array.init Prog.buf_size (fun i -> Vp.Memory.read_tag soc.Vp.Soc.memory (base + i))

let purity img =
  let lat, lc, _ = lc_hc () in
  let policy = Dift.Policy.unrestricted lat ~default_tag:lc in
  let soc, monitor = run_tagged img policy in
  let bad_reg = ref None in
  Array.iteri
    (fun i t -> if i > 0 && t <> lc && !bad_reg = None then bad_reg := Some i)
    (reg_tags soc);
  match !bad_reg with
  | Some i -> Failed (Printf.sprintf "register %s became tainted" (Rv32.Reg.name i))
  | None -> (
      match Vp.Memory.tainted_regions soc.Vp.Soc.memory ~baseline:lc with
      | (lo, hi, _) :: _ ->
          Failed (Printf.sprintf "RAM bytes [0x%x..0x%x] became tainted" lo hi)
      | [] ->
          if Dift.Monitor.violation_count monitor <> 0 then
            Failed "check-free policy recorded violations"
          else if Dift.Monitor.declassification_count monitor <> 0 then
            Failed "check-free policy recorded declassifications"
          else Ok)

(* Tainted-output footprint: which registers / scratch bytes carry HC. *)
let footprint soc img hc =
  let regs = reg_tags soc in
  let bufs = buf_tags soc img in
  let tainted_regs = ref [] and tainted_bytes = ref [] in
  Array.iteri (fun i t -> if i > 0 && t = hc then tainted_regs := i :: !tainted_regs) regs;
  Array.iteri (fun i t -> if t = hc then tainted_bytes := i :: !tainted_bytes) bufs;
  (!tainted_regs, !tainted_bytes)

let monotonic rng img =
  let lat, lc, hc = lc_hc () in
  let buf = Rv32_asm.Image.symbol img "buf" in
  let random_range () =
    let lo = buf + Rng.int rng Prog.buf_size in
    let hi = min (buf + Prog.buf_size - 1) (lo + Rng.int rng 64) in
    (lo, hi)
  in
  let lo_a, hi_a = random_range () in
  let lo_b, hi_b = random_range () in
  let region name lo hi = Dift.Policy.region ~name ~lo ~hi ~tag:hc in
  let mk classification =
    Dift.Policy.make ~lattice:lat ~default_tag:lc ~classification ()
  in
  let soc_a, _ = run_tagged img (mk [ region "a" lo_a hi_a ]) in
  let soc_b, _ = run_tagged img (mk [ region "a" lo_a hi_a; region "b" lo_b hi_b ]) in
  let regs_a, bytes_a = footprint soc_a img hc in
  let regs_b, bytes_b = footprint soc_b img hc in
  let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
  if not (subset regs_a regs_b) then
    Failed "a register tainted under A is clean under A∪B"
  else if not (subset bytes_a bytes_b) then
    Failed "a scratch byte tainted under A is clean under A∪B"
  else Ok

(* Trap delivery must not be a taint channel: mepc/mcause/mtval are
   written by the trap-entry microarchitecture with control-plane (pub)
   tags, even when the trapping instruction was processing tainted data —
   e.g. an ecall with every argument register carrying HC, or a tainted
   ebreak skipped by the handler. A tainted trap CSR would let a handler
   launder secrets into "hardware" state. The generated scaffold only
   ever writes pub values into mtvec/mepc, so any HC on these CSRs after
   a run came from trap entry itself. *)
let trap_entry_pub img =
  let lat, lc, hc = lc_hc () in
  let buf = Rv32_asm.Image.symbol img "buf" in
  let policy =
    Dift.Policy.make ~lattice:lat ~default_tag:lc
      ~classification:
        [
          Dift.Policy.region ~name:"buf" ~lo:buf
            ~hi:(buf + Prog.buf_size - 1)
            ~tag:hc;
        ]
      ()
  in
  let soc, _ = run_tagged img policy in
  let c = soc.Vp.Soc.cpu.Vp.Soc.cpu_csr in
  let checks =
    [
      ("mepc", c.Rv32.Csr.t_mepc);
      ("mcause", c.Rv32.Csr.t_mcause);
      ("mtval", c.Rv32.Csr.t_mtval);
      ("mtvec", c.Rv32.Csr.t_mtvec);
    ]
  in
  match
    List.find_opt (fun (_, t) -> not (Dift.Lattice.allowed_flow lat t lc)) checks
  with
  | Some (name, t) ->
      Failed
        (Printf.sprintf "trap CSR %s carries tag %s after trap entry" name
           (Dift.Lattice.name lat t))
  | None -> Ok

let declass_free (r : Oracle.result3) =
  if r.Oracle.declassifications = 0 then Ok
  else
    Failed
      (Printf.sprintf "%d declassification(s) with no declassifying peripheral in play"
         r.Oracle.declassifications)
