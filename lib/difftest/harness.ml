type config = {
  seed : int;
  programs : int;
  size : int;
  shrink : bool;
  shrink_dir : string option;
  graph_dir : string option;
  props_every : int;
  inject : string option;
  cache_diff : bool;
  snap_diff : bool;
  engines : Rv32.Core.engine list;
  jobs : int;
  warm_start : bool;
  shard_size : int;
  checkpoint : string option;
  resume : string option;
}

let default =
  {
    seed = 0x5eed;
    programs = 200;
    size = 30;
    shrink = true;
    shrink_dir = None;
    graph_dir = None;
    props_every = 5;
    inject = None;
    cache_diff = false;
    snap_diff = false;
    engines = [ Rv32.Core.Threaded_superblock ];
    jobs = 1;
    warm_start = true;
    shard_size = 25;
    checkpoint = None;
    resume = None;
  }

(* Every config field that determines the campaign's deterministic
   stream — and therefore what a checkpointed shard payload means. A
   checkpoint written under one fingerprint refuses to resume under
   another. [jobs], [warm_start] and the checkpoint paths themselves are
   deliberately absent: they cannot change any shard's output (pinned by
   test_parallel), so a campaign may resume with a different worker
   count. *)
let fingerprint cfg =
  let opt = function None -> "-" | Some s -> "+" ^ s in
  String.concat "|"
    [
      "difftest-campaign-v1";
      string_of_int cfg.seed;
      string_of_int cfg.programs;
      string_of_int cfg.size;
      string_of_bool cfg.shrink;
      opt cfg.shrink_dir;
      opt cfg.graph_dir;
      string_of_int cfg.props_every;
      opt cfg.inject;
      string_of_bool cfg.cache_diff;
      string_of_bool cfg.snap_diff;
      String.concat "," (List.map Rv32.Core.engine_name cfg.engines);
      string_of_int cfg.shard_size;
    ]

type failure = {
  f_kind : string;
  f_detail : string;
  f_asm : string;
  f_file : string option;
  f_blocks : int;
  f_insns : int;
  f_evals : int;
  f_forensics : string option;
  f_graph : string option;
}

type report = {
  programs : int;
  completed : int;
  golden_mismatches : int;
  transparency_mismatches : int;
  purity_failures : int;
  monotonicity_failures : int;
  trap_taint_failures : int;
  declass_violations : int;
  cache_mismatches : int;
  snapshot_mismatches : int;
  engine_mismatches : int;
  injected_hits : int;
  violations : int;
  checks : int;
  errors : int;
  coverage : Coverage.t;
  failures : failure list;
}

let healthy r =
  r.golden_mismatches = 0 && r.transparency_mismatches = 0
  && r.purity_failures = 0 && r.monotonicity_failures = 0
  && r.trap_taint_failures = 0
  && r.declass_violations = 0 && r.cache_mismatches = 0
  && r.snapshot_mismatches = 0 && r.engine_mismatches = 0 && r.errors = 0

(* Mutable accumulator threaded through the run loop. *)
type acc = {
  mutable a_completed : int;
  mutable a_golden : int;
  mutable a_transparency : int;
  mutable a_purity : int;
  mutable a_monotonic : int;
  mutable a_trap_taint : int;
  mutable a_declass : int;
  mutable a_cache : int;
  mutable a_snapshot : int;
  mutable a_engine : int;
  mutable a_injected : int;
  mutable a_violations : int;
  mutable a_checks : int;
  mutable a_errors : int;
  mutable a_failures : failure list;
}

(* --- Shard-output checkpoint codec ----------------------------------- *)

(* A completed shard's output, encoded as a DIFTVPCP payload
   (lib/parallelkit/checkpoint.ml). The encoding must round-trip the
   merged report byte-for-byte: every counter, the failure list in its
   in-shard order (newest first), and the coverage table. *)
let encode_shard ((acc : acc), cov) =
  let open Snapshot.Codec in
  let w = writer () in
  List.iter (put_varint w)
    [
      acc.a_completed; acc.a_golden; acc.a_transparency; acc.a_purity;
      acc.a_monotonic; acc.a_trap_taint; acc.a_declass; acc.a_cache;
      acc.a_snapshot; acc.a_engine; acc.a_injected; acc.a_violations;
      acc.a_checks; acc.a_errors;
    ];
  let put_opt w o =
    put_bool w (Option.is_some o);
    Option.iter (put_string w) o
  in
  put_list w
    (fun w f ->
      put_string w f.f_kind;
      put_string w f.f_detail;
      put_string w f.f_asm;
      put_opt w f.f_file;
      put_varint w f.f_blocks;
      put_varint w f.f_insns;
      put_varint w f.f_evals;
      put_opt w f.f_forensics;
      put_opt w f.f_graph)
    acc.a_failures;
  Coverage.save w cov;
  contents w

let decode_shard payload =
  let open Snapshot.Codec in
  let r = reader payload in
  let c () = get_varint r in
  let a_completed = c () in
  let a_golden = c () in
  let a_transparency = c () in
  let a_purity = c () in
  let a_monotonic = c () in
  let a_trap_taint = c () in
  let a_declass = c () in
  let a_cache = c () in
  let a_snapshot = c () in
  let a_engine = c () in
  let a_injected = c () in
  let a_violations = c () in
  let a_checks = c () in
  let a_errors = c () in
  let get_opt r = if get_bool r then Some (get_string r) else None in
  let a_failures =
    get_list r (fun r ->
        let f_kind = get_string r in
        let f_detail = get_string r in
        let f_asm = get_string r in
        let f_file = get_opt r in
        let f_blocks = get_varint r in
        let f_insns = get_varint r in
        let f_evals = get_varint r in
        let f_forensics = get_opt r in
        let f_graph = get_opt r in
        { f_kind; f_detail; f_asm; f_file; f_blocks; f_insns; f_evals;
          f_forensics; f_graph })
  in
  let cov = Coverage.load r in
  expect_end r;
  ( {
      a_completed; a_golden; a_transparency; a_purity; a_monotonic;
      a_trap_taint; a_declass; a_cache; a_snapshot; a_engine; a_injected;
      a_violations; a_checks; a_errors; a_failures;
    },
    cov )

(* Forensic replay of a shrunk reproducer: re-run it on the tracked VP
   with the tracing subsystem attached and render the resulting report
   (execution window plus any provenance recorded).  The reproducer
   already failed once, so anything going wrong here — including the
   replay trapping — must not lose the failure itself. *)
let forensic_replay ~graph prog =
  try
    let img = Prog.assemble prog in
    let policy = Oracle.unrestricted_policy () in
    let tracer = Trace.Tracer.create policy.Dift.Policy.lattice in
    let sink =
      if graph then
        Some (Trace.Graph.attach ~context:"difftest shrunk reproducer" tracer)
      else None
    in
    (try ignore (Oracle.run_vp ~tracking:true ~policy ~tracer img)
     with _ -> ());
    let store = Option.map Trace.Graph.finish sink in
    Option.iter Trace.Graph.detach sink;
    if Trace.Tracer.events_recorded tracer = 0 then (None, store)
    else
      ( Some
          (Trace.Forensics.to_string
             (Trace.Forensics.make ~context:"difftest shrunk reproducer"
                tracer ())),
        store )
  with _ -> (None, None)

let executes_opcode op prog =
  let cov = Coverage.create () in
  (try ignore (Oracle.run ~trace:(Coverage.hook cov) (Prog.assemble prog))
   with _ -> ());
  Coverage.count cov op > 0

let record_failure cfg acc ~index ~kind ~detail ~predicate prog =
  let shrunk, stats =
    if cfg.shrink then Shrink.minimize predicate prog
    else (prog, Shrink.{ evals = 0; from_blocks = Prog.block_count prog;
                         from_insns = Prog.insn_count prog;
                         to_blocks = Prog.block_count prog;
                         to_insns = Prog.insn_count prog })
  in
  let banner =
    [
      Printf.sprintf "difftest reproducer: %s" kind;
      Printf.sprintf "seed 0x%x, program %d; %s" cfg.seed index detail;
      Printf.sprintf "shrunk %d blocks / %d insns -> %d blocks / %d insns (%d evals)"
        stats.Shrink.from_blocks stats.Shrink.from_insns stats.Shrink.to_blocks
        stats.Shrink.to_insns stats.Shrink.evals;
    ]
  in
  let asm = Prog.to_asm ~banner shrunk in
  let forensics, store =
    forensic_replay ~graph:(cfg.graph_dir <> None) shrunk
  in
  let file =
    match cfg.shrink_dir with
    | None -> None
    | Some dir ->
        let path =
          Filename.concat dir (Printf.sprintf "repro_%08x_%d.s" cfg.seed index)
        in
        Snapshot.Io.write_file_atomic path asm;
        (match forensics with
        | Some text ->
            let fpath =
              Filename.concat dir
                (Printf.sprintf "repro_%08x_%d.forensics.txt" cfg.seed index)
            in
            Snapshot.Io.write_file_atomic fpath (text ^ "\n")
        | None -> ());
        Some path
  in
  let graph_file =
    match (cfg.graph_dir, store) with
    | Some dir, Some store ->
        let gpath =
          Filename.concat dir
            (Printf.sprintf "repro_%08x_%d.iftg" cfg.seed index)
        in
        Iftgraph.Store.write_file store gpath;
        Some gpath
    | _ -> None
  in
  acc.a_failures <-
    {
      f_kind = kind;
      f_detail = detail;
      f_asm = asm;
      f_file = file;
      f_blocks = Prog.block_count shrunk;
      f_insns = Prog.insn_count shrunk;
      f_evals = stats.Shrink.evals;
      f_forensics = forensics;
      f_graph = graph_file;
    }
    :: acc.a_failures

(* One shard of the campaign: a contiguous slice of the program indices,
   generated from the shard's own derived RNG and guided by the shard's
   own coverage table, accumulating into a private [acc].  Shards are the
   unit of parallelism — the shard structure depends only on
   (programs, shard_size), never on the worker count, so any [jobs]
   produces the same shard outputs and therefore the same merged report.
   Shard 0 keeps the campaign seed unchanged (see
   {!Parallelkit.Campaign.derive_seed}): a campaign that fits in one
   shard reproduces the historical sequential stream exactly.

   Everything a shard touches is private to it (fresh RNGs, fresh
   coverage table, fresh SoCs per oracle call); the only shared value is
   the immutable warm-boot blob.  Reproducer files are keyed by the
   global program index, so concurrent shards never collide on paths. *)
let run_shard cfg warm (sh : Parallelkit.Campaign.shard) =
  (* The head of [engines] is the engine every base leg runs on; the tail
     is cross-checked against it by the engine-differential leg. *)
  let base_engine, cross_engines =
    match cfg.engines with
    | [] -> (Rv32.Core.Threaded_superblock, [])
    | e :: rest -> (e, rest)
  in
  let rng = Rng.create ~seed:sh.Parallelkit.Campaign.seed in
  let prng =
    Rng.create ~seed:(sh.Parallelkit.Campaign.seed lxor 0x9e3779b9)
  in
  let cov = Coverage.create () in
  let acc =
    {
      a_completed = 0;
      a_golden = 0;
      a_transparency = 0;
      a_purity = 0;
      a_monotonic = 0;
      a_trap_taint = 0;
      a_declass = 0;
      a_cache = 0;
      a_snapshot = 0;
      a_engine = 0;
      a_injected = 0;
      a_violations = 0;
      a_checks = 0;
      a_errors = 0;
      a_failures = [];
    }
  in
  for local = 1 to sh.Parallelkit.Campaign.length do
    let i = sh.Parallelkit.Campaign.start + local in
    match
      let prog = Gen.program rng cov ~size:cfg.size in
      let img = Prog.assemble prog in
      let policy = Gen.policy rng img in
      let percov = Coverage.create () in
      let res =
        Oracle.run ~engine:base_engine ~policy ~trace:(Coverage.hook percov)
          ?warm img
      in
      Coverage.merge ~into:cov percov;
      acc.a_violations <- acc.a_violations + res.Oracle.violations;
      acc.a_checks <- acc.a_checks + res.Oracle.checks;
      let all_exited =
        List.for_all
          (fun (o : Oracle.outcome) ->
            match o.Oracle.stop with Oracle.Exited _ -> true | _ -> false)
          [ res.Oracle.golden; res.Oracle.vp; res.Oracle.vpp ]
      in
      if all_exited then acc.a_completed <- acc.a_completed + 1;
      (* 1. ISS correctness: golden model vs plain VP. *)
      (match Oracle.explain res.Oracle.golden res.Oracle.vp with
      | Some detail ->
          acc.a_golden <- acc.a_golden + 1;
          record_failure cfg acc ~index:i ~kind:"golden-vs-vp" ~detail
            ~predicate:(fun p ->
              try
                let r = Oracle.run (Prog.assemble p) in
                not (Oracle.agree r.Oracle.golden r.Oracle.vp)
              with _ -> false)
            prog
      | None -> ());
      (* 2. DIFT transparency: plain VP vs VP+ under the random policy. *)
      (match Oracle.explain res.Oracle.vp res.Oracle.vpp with
      | Some detail ->
          acc.a_transparency <- acc.a_transparency + 1;
          record_failure cfg acc ~index:i ~kind:"transparency" ~detail
            ~predicate:(fun p ->
              try
                (* Same policy as the failing run: classification regions
                   address RAM absolutely, so they stay valid as the
                   program shrinks. *)
                let r = Oracle.run ~policy (Prog.assemble p) in
                not (Oracle.agree r.Oracle.vp r.Oracle.vpp)
              with _ -> false)
            prog
      | None -> ());
      (* 3. Declassification soundness. *)
      (match Props.declass_free res with
      | Props.Failed detail ->
          acc.a_declass <- acc.a_declass + 1;
          record_failure cfg acc ~index:i ~kind:"declassification" ~detail
            ~predicate:(fun p ->
              try (Oracle.run (Prog.assemble p)).Oracle.declassifications > 0
              with _ -> false)
            prog
      | Props.Ok -> ());
      (* 4. Taint-metamorphic properties, on a subsample. *)
      if cfg.props_every > 0 && i mod cfg.props_every = 0 then begin
        (match Props.purity img with
        | Props.Failed detail ->
            acc.a_purity <- acc.a_purity + 1;
            record_failure cfg acc ~index:i ~kind:"purity" ~detail
              ~predicate:(fun p ->
                try
                  match Props.purity (Prog.assemble p) with
                  | Props.Failed _ -> true
                  | Props.Ok -> false
                with _ -> false)
              prog
        | Props.Ok -> ());
        (match Props.trap_entry_pub img with
        | Props.Failed detail ->
            acc.a_trap_taint <- acc.a_trap_taint + 1;
            record_failure cfg acc ~index:i ~kind:"trap-entry-taint" ~detail
              ~predicate:(fun p ->
                try
                  match Props.trap_entry_pub (Prog.assemble p) with
                  | Props.Failed _ -> true
                  | Props.Ok -> false
                with _ -> false)
              prog
        | Props.Ok -> ());
        match Props.monotonic prng img with
        | Props.Failed detail ->
            acc.a_monotonic <- acc.a_monotonic + 1;
            record_failure cfg acc ~index:i ~kind:"monotonicity" ~detail
              ~predicate:(fun p ->
                try
                  match
                    Props.monotonic (Rng.create ~seed:(cfg.seed + i)) (Prog.assemble p)
                  with
                  | Props.Failed _ -> true
                  | Props.Ok -> false
                with _ -> false)
              prog
        | Props.Ok -> ()
      end;
      (* 5. Block-cache transparency: the same program single-stepped
         (block cache and fast path off) must agree with the cached runs
         already taken by the oracle above, on both flavours. *)
      if cfg.cache_diff then begin
        let nocache_vpp, _ =
          Oracle.run_vp ~tracking:true ~block_cache:false ~fast_path:false
            ~policy img
        in
        (match Oracle.explain res.Oracle.vpp nocache_vpp with
        | Some detail ->
            acc.a_cache <- acc.a_cache + 1;
            record_failure cfg acc ~index:i ~kind:"cache-vs-nocache"
              ~detail:(Printf.sprintf "VP+ cached vs single-step: %s" detail)
              ~predicate:(fun p ->
                try
                  let img = Prog.assemble p in
                  let cached, _ = Oracle.run_vp ~tracking:true ~policy img in
                  let plain, _ =
                    Oracle.run_vp ~tracking:true ~block_cache:false
                      ~fast_path:false ~policy img
                  in
                  not (Oracle.agree cached plain)
                with _ -> false)
              prog
        | None -> ());
        let nocache_vp, _ =
          Oracle.run_vp ~tracking:false ~block_cache:false ~fast_path:false img
        in
        match Oracle.explain res.Oracle.vp nocache_vp with
        | Some detail ->
            acc.a_cache <- acc.a_cache + 1;
            record_failure cfg acc ~index:i ~kind:"cache-vs-nocache"
              ~detail:(Printf.sprintf "VP cached vs single-step: %s" detail)
              ~predicate:(fun p ->
                try
                  let img = Prog.assemble p in
                  let cached, _ = Oracle.run_vp ~tracking:false img in
                  let plain, _ =
                    Oracle.run_vp ~tracking:false ~block_cache:false
                      ~fast_path:false img
                  in
                  not (Oracle.agree cached plain)
                with _ -> false)
              prog
        | None -> ()
      end;
      (* 6. Snapshot transparency: the same program run in checkpointed
         segments — pause, save, restore into a fresh SoC, continue —
         must agree with an uninterrupted run on the same time-sync
         grid. The shrink predicate replays the whole snapshot cycle. *)
      if cfg.snap_diff then begin
        let straight, _ =
          Oracle.run_vp ~tracking:true ~quantum:Oracle.snap_quantum ~policy img
        in
        let snap, _ = Oracle.run_vp_snapshot ~tracking:true ~policy img in
        match Oracle.explain straight snap with
        | Some detail ->
            acc.a_snapshot <- acc.a_snapshot + 1;
            record_failure cfg acc ~index:i ~kind:"snapshot-vs-straight"
              ~detail:
                (Printf.sprintf "checkpointed vs uninterrupted: %s" detail)
              ~predicate:(fun p ->
                try
                  let img = Prog.assemble p in
                  let straight, _ =
                    Oracle.run_vp ~tracking:true ~quantum:Oracle.snap_quantum
                      ~policy img
                  in
                  let snap, _ =
                    Oracle.run_vp_snapshot ~tracking:true ~policy img
                  in
                  not (Oracle.agree straight snap)
                with _ -> false)
              prog
        | None -> ()
      end;
      (* 7. Engine differential: every additional engine in the config
         must retire byte-identical architectural state on both flavours
         — including taint tags on VP+ ([Oracle.agree] compares them when
         both runs are tracked). A divergence means the threaded-code
         compiler (or the interpreter) miscomputed a value or a tag. *)
      List.iter
        (fun other ->
          let ename = Rv32.Core.engine_name other in
          let other_vpp, _ =
            Oracle.run_vp ~tracking:true ~engine:other ~policy img
          in
          (match Oracle.explain res.Oracle.vpp other_vpp with
          | Some detail ->
              acc.a_engine <- acc.a_engine + 1;
              record_failure cfg acc ~index:i ~kind:"engine-diff"
                ~detail:
                  (Printf.sprintf "VP+ %s vs %s: %s"
                     (Rv32.Core.engine_name base_engine)
                     ename detail)
                ~predicate:(fun p ->
                  try
                    let img = Prog.assemble p in
                    let a, _ =
                      Oracle.run_vp ~tracking:true ~engine:base_engine
                        ~policy img
                    in
                    let b, _ =
                      Oracle.run_vp ~tracking:true ~engine:other ~policy img
                    in
                    not (Oracle.agree a b)
                  with _ -> false)
                prog
          | None -> ());
          let other_vp, _ =
            Oracle.run_vp ~tracking:false ~engine:other img
          in
          match Oracle.explain res.Oracle.vp other_vp with
          | Some detail ->
              acc.a_engine <- acc.a_engine + 1;
              record_failure cfg acc ~index:i ~kind:"engine-diff"
                ~detail:
                  (Printf.sprintf "VP %s vs %s: %s"
                     (Rv32.Core.engine_name base_engine)
                     ename detail)
                ~predicate:(fun p ->
                  try
                    let img = Prog.assemble p in
                    let a, _ =
                      Oracle.run_vp ~tracking:false ~engine:base_engine img
                    in
                    let b, _ =
                      Oracle.run_vp ~tracking:false ~engine:other img
                    in
                    not (Oracle.agree a b)
                  with _ -> false)
                prog
          | None -> ())
        cross_engines;
      (* 8. Fault injection: validate the detect-shrink-report pipeline. *)
      match cfg.inject with
      | Some op when Coverage.count percov op > 0 ->
          acc.a_injected <- acc.a_injected + 1;
          record_failure cfg acc ~index:i
            ~kind:(Printf.sprintf "injected:%s" op)
            ~detail:(Printf.sprintf "program executed '%s' (injected fault)" op)
            ~predicate:(executes_opcode op) prog
      | _ -> ()
    with
    | () -> ()
    | exception _ -> acc.a_errors <- acc.a_errors + 1
  done;
  (acc, cov)

let run ?(config = default) () =
  let cfg = config in
  let shards =
    Parallelkit.Campaign.shards ~seed:cfg.seed ~total:cfg.programs
      ~shard_size:cfg.shard_size
  in
  let nshards = Array.length shards in
  let fp = fingerprint cfg in
  (* Resume: load the checkpoint, refuse one from a different campaign,
     and decode every recorded shard before running anything — a corrupt
     or truncated container fails cleanly here, with no partial merge
     and no oracle work spent. *)
  let outs = Array.make nshards None in
  let ckpt =
    match cfg.resume with
    | None -> Parallelkit.Checkpoint.create ~fingerprint:fp ~shards:nshards
    | Some path ->
        let c = Parallelkit.Checkpoint.load path in
        Parallelkit.Checkpoint.require c ~fingerprint:fp ~shards:nshards;
        List.iter
          (fun (i, payload) -> outs.(i) <- Some (decode_shard payload))
          (Parallelkit.Checkpoint.entries c);
        c
  in
  let pending =
    Array.of_list
      (List.filter
         (fun (sh : Parallelkit.Campaign.shard) ->
           outs.(sh.Parallelkit.Campaign.index) = None)
         (Array.to_list shards))
  in
  let warm =
    if cfg.warm_start && Array.length pending > 0 then
      Some (Oracle.warm_boot ())
    else None
  in
  (* Checkpointing rides on the pool's caller-side completion hook:
     every finished shard is folded into the container and the file is
     atomically republished. Completion order varies with the steal
     pattern, so the set of shards a killed run saved is timing-
     dependent — but each payload is deterministic, so the post-resume
     merge is not. *)
  let ckpt = ref ckpt in
  let on_done =
    Option.map
      (fun path pi out ->
        let shard = pending.(pi).Parallelkit.Campaign.index in
        ckpt :=
          Parallelkit.Checkpoint.add !ckpt ~shard ~payload:(encode_shard out);
        Parallelkit.Checkpoint.save !ckpt path)
      cfg.checkpoint
  in
  let fresh =
    Parallelkit.Pool.map ?on_done ~jobs:cfg.jobs (run_shard cfg warm) pending
  in
  Array.iteri
    (fun pi out -> outs.(pending.(pi).Parallelkit.Campaign.index) <- Some out)
    fresh;
  let outs =
    Array.map
      (function Some o -> o | None -> assert false (* all shards filled *))
      outs
  in
  (* Merge in shard-index order.  Counters are commutative sums and the
     coverage merge is a per-key sum, so the order is immaterial there;
     the failure list is rebuilt newest-first (the highest-index shard's
     failures in front, each shard's list already newest-first) to match
     the sequential accumulation exactly. *)
  let cov = Coverage.create () in
  Array.iter (fun (_, c) -> Coverage.merge ~into:cov c) outs;
  let sum f = Array.fold_left (fun t (a, _) -> t + f a) 0 outs in
  let failures =
    Array.fold_left (fun tail (a, _) -> a.a_failures @ tail) [] outs
  in
  {
    programs = cfg.programs;
    completed = sum (fun a -> a.a_completed);
    golden_mismatches = sum (fun a -> a.a_golden);
    transparency_mismatches = sum (fun a -> a.a_transparency);
    purity_failures = sum (fun a -> a.a_purity);
    monotonicity_failures = sum (fun a -> a.a_monotonic);
    trap_taint_failures = sum (fun a -> a.a_trap_taint);
    declass_violations = sum (fun a -> a.a_declass);
    cache_mismatches = sum (fun a -> a.a_cache);
    snapshot_mismatches = sum (fun a -> a.a_snapshot);
    engine_mismatches = sum (fun a -> a.a_engine);
    injected_hits = sum (fun a -> a.a_injected);
    violations = sum (fun a -> a.a_violations);
    checks = sum (fun a -> a.a_checks);
    errors = sum (fun a -> a.a_errors);
    coverage = cov;
    failures;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>difftest: %d programs, %d completed on all three models@,\
     golden-vs-VP mismatches: %d@,\
     VP-vs-VP+ transparency mismatches: %d@,\
     purity failures: %d, monotonicity failures: %d, declassification violations: %d@,\
     trap-entry taint failures: %d@,\
     block-cache mismatches: %d@,\
     snapshot-vs-straight mismatches: %d@,\
     engine-vs-engine mismatches: %d@,\
     injected-fault hits: %d@,\
     %d clearance checks, %d policy violations recorded (informational)@,\
     harness errors: %d@,%a"
    r.programs r.completed r.golden_mismatches r.transparency_mismatches
    r.purity_failures r.monotonicity_failures r.declass_violations
    r.trap_taint_failures
    r.cache_mismatches r.snapshot_mismatches r.engine_mismatches
    r.injected_hits r.checks r.violations r.errors
    Coverage.pp r.coverage;
  List.iter
    (fun f ->
      Format.fprintf fmt "@,@[<v>FAILURE %s: %s@,  shrunk to %d blocks / %d insns (%d oracle evals)%s@]"
        f.f_kind f.f_detail f.f_blocks f.f_insns f.f_evals
        (match f.f_file with
        | Some p ->
            Printf.sprintf "\n  reproducer written to %s%s%s" p
              (if f.f_forensics <> None then " (+ .forensics.txt)" else "")
              (if f.f_graph <> None then " (+ .iftg graph store)" else "")
        | None ->
            if f.f_graph <> None then
              Printf.sprintf "\n  graph store written to %s"
                (Option.get f.f_graph)
            else ""))
    (List.rev r.failures);
  Format.fprintf fmt "@]"
