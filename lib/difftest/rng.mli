(** Deterministic xorshift32 PRNG: fuzzing runs are reproducible by seed,
    independently of the OCaml stdlib [Random] state. *)

type t

val create : seed:int -> t
(** Seed 0 is mapped to 1 (xorshift has a zero fixed point). *)

val next : t -> int
(** Next raw 32-bit state (uniform, non-zero). *)

val int : t -> int -> int
(** [int t n] is uniform-ish in [0, n); [n] must be positive. *)

val range : t -> int -> int -> int
(** [range t lo hi] is in [lo, hi] inclusive. *)

val bool : t -> bool

val choose : t -> 'a list -> 'a
(** Uniform pick; raises [Invalid_argument] on an empty list. *)

val weighted : t -> (int * 'a) list -> 'a
(** Pick proportionally to the (positive) weights. *)
