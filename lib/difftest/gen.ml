module I = Rv32.Insn

let wreg r = Rng.choose r Prog.wregs

(* Scratch-buffer offsets, aligned per access width. *)
let off_w r = 4 * Rng.int r (Prog.buf_size / 4 - 1)
let off_h r = 2 * Rng.int r (Prog.buf_size / 2 - 1)
let off_b r = Rng.int r Prog.buf_size

let imm12 r = Rng.range r (-2048) 2047
let shamt r = Rng.int r 32
let uimm r = Rng.int r 0x100000 lsl 12
let zimm r = Rng.int r 32

(* CSRs generated reads may target: machine-trap state the scaffold's
   handler and the Mret blocks keep live. Counters are excluded (the
   golden model and the VP agree on them, but keeping reads architectural
   makes a failing reproducer's registers stable across re-runs). *)
let read_csrs =
  Rv32.Csr.[ mscratch; mstatus; mtvec; mepc; mcause; mtval ]

let read_csr r = Rng.choose r read_csrs

(* The straight-line pool: (base weight, opcode key, make). The key is the
   dynamic-coverage mnemonic whose absence boosts the weight 8x. *)
let pool : (int * string * (Rng.t -> I.t)) list =
  let b = Prog.buf_reg in
  [
    (6, "add", fun r -> I.ADD (wreg r, wreg r, wreg r));
    (4, "sub", fun r -> I.SUB (wreg r, wreg r, wreg r));
    (4, "xor", fun r -> I.XOR (wreg r, wreg r, wreg r));
    (4, "or", fun r -> I.OR (wreg r, wreg r, wreg r));
    (4, "and", fun r -> I.AND (wreg r, wreg r, wreg r));
    (3, "slt", fun r -> I.SLT (wreg r, wreg r, wreg r));
    (3, "sltu", fun r -> I.SLTU (wreg r, wreg r, wreg r));
    (3, "sll", fun r -> I.SLL (wreg r, wreg r, wreg r));
    (3, "srl", fun r -> I.SRL (wreg r, wreg r, wreg r));
    (3, "sra", fun r -> I.SRA (wreg r, wreg r, wreg r));
    (3, "mul", fun r -> I.MUL (wreg r, wreg r, wreg r));
    (2, "mulh", fun r -> I.MULH (wreg r, wreg r, wreg r));
    (2, "mulhsu", fun r -> I.MULHSU (wreg r, wreg r, wreg r));
    (2, "mulhu", fun r -> I.MULHU (wreg r, wreg r, wreg r));
    (2, "div", fun r -> I.DIV (wreg r, wreg r, wreg r));
    (2, "divu", fun r -> I.DIVU (wreg r, wreg r, wreg r));
    (2, "rem", fun r -> I.REM (wreg r, wreg r, wreg r));
    (2, "remu", fun r -> I.REMU (wreg r, wreg r, wreg r));
    (6, "addi", fun r -> I.ADDI (wreg r, wreg r, imm12 r));
    (2, "slti", fun r -> I.SLTI (wreg r, wreg r, imm12 r));
    (2, "sltiu", fun r -> I.SLTIU (wreg r, wreg r, imm12 r));
    (3, "xori", fun r -> I.XORI (wreg r, wreg r, imm12 r));
    (3, "ori", fun r -> I.ORI (wreg r, wreg r, imm12 r));
    (3, "andi", fun r -> I.ANDI (wreg r, wreg r, imm12 r));
    (2, "slli", fun r -> I.SLLI (wreg r, wreg r, shamt r));
    (2, "srli", fun r -> I.SRLI (wreg r, wreg r, shamt r));
    (2, "srai", fun r -> I.SRAI (wreg r, wreg r, shamt r));
    (2, "lui", fun r -> I.LUI (wreg r, uimm r));
    (2, "auipc", fun r -> I.AUIPC (wreg r, Rng.int r 16 lsl 12));
    (3, "lw", fun r -> I.LW (wreg r, b, off_w r));
    (2, "lh", fun r -> I.LH (wreg r, b, off_h r));
    (2, "lhu", fun r -> I.LHU (wreg r, b, off_h r));
    (2, "lb", fun r -> I.LB (wreg r, b, off_b r));
    (2, "lbu", fun r -> I.LBU (wreg r, b, off_b r));
    (3, "sw", fun r -> I.SW (b, wreg r, off_w r));
    (2, "sh", fun r -> I.SH (b, wreg r, off_h r));
    (2, "sb", fun r -> I.SB (b, wreg r, off_b r));
    (1, "fence", fun _ -> I.FENCE);
    (* Trap instructions: the program scaffold's handler skips them (or,
       for an exit ecall, honours them), so they are ordinary body
       members. CSR writes go only to mscratch — see {!Prog}. *)
    (1, "ecall", fun _ -> I.ECALL);
    (1, "ebreak", fun _ -> I.EBREAK);
    (2, "csrrw", fun r -> I.CSRRW (wreg r, wreg r, Rv32.Csr.mscratch));
    (2, "csrrs", fun r -> I.CSRRS (wreg r, 0, read_csr r));
    (1, "csrrc", fun r -> I.CSRRC (wreg r, wreg r, Rv32.Csr.mscratch));
    (1, "csrrwi", fun r -> I.CSRRWI (wreg r, zimm r, Rv32.Csr.mscratch));
    (1, "csrrsi", fun r -> I.CSRRSI (wreg r, zimm r, Rv32.Csr.mscratch));
    (1, "csrrci", fun r -> I.CSRRCI (wreg r, zimm r, Rv32.Csr.mscratch));
  ]

let insn r cov =
  let weighted =
    List.map
      (fun (w, key, mk) ->
        ((if Coverage.count cov key = 0 then w * 8 else w), mk))
      pool
  in
  (Rng.weighted r weighted) r

let body r cov ~len = List.init len (fun _ -> insn r cov)

(* M-extension edge operands: div-by-zero, INT_MIN / -1, MULH sign cases.
   Materialised as li sequences inside an ordinary straight block. *)
let int_min = 0x80000000
let minus_one = 0xffffffff

let medge_cases : (string * (int * int)) list =
  [
    ("div", (0x1234, 0));
    ("divu", (0xdead_beef, 0));
    ("rem", (-77 land 0xffffffff, 0));
    ("remu", (0xcafe, 0));
    ("div", (int_min, minus_one));
    ("rem", (int_min, minus_one));
    ("divu", (int_min, minus_one));
    ("remu", (int_min, minus_one));
    ("mulh", (int_min, int_min));
    ("mulh", (int_min, minus_one));
    ("mulh", (0x7fffffff, 0x7fffffff));
    ("mulh", (minus_one, 0x7fffffff));
    ("mulhsu", (minus_one, minus_one));
    ("mulhsu", (int_min, 0x7fffffff));
    ("mulhsu", (0x7fffffff, minus_one));
    ("mulhu", (minus_one, minus_one));
    ("mulhu", (int_min, int_min));
    ("mul", (int_min, minus_one));
  ]

let medge_block r cov =
  let boosted =
    List.filter (fun (op, _) -> Coverage.count cov op = 0) medge_cases
  in
  let op, (a, bv) =
    if boosted <> [] && Rng.bool r then Rng.choose r boosted
    else Rng.choose r medge_cases
  in
  let ra = wreg r in
  let rb = Rng.choose r (List.filter (fun x -> x <> ra) Prog.wregs) in
  let rd = wreg r in
  let mk =
    match op with
    | "div" -> fun (d, a, b) -> I.DIV (d, a, b)
    | "divu" -> fun (d, a, b) -> I.DIVU (d, a, b)
    | "rem" -> fun (d, a, b) -> I.REM (d, a, b)
    | "remu" -> fun (d, a, b) -> I.REMU (d, a, b)
    | "mulh" -> fun (d, a, b) -> I.MULH (d, a, b)
    | "mulhsu" -> fun (d, a, b) -> I.MULHSU (d, a, b)
    | "mulhu" -> fun (d, a, b) -> I.MULHU (d, a, b)
    | _ -> fun (d, a, b) -> I.MUL (d, a, b)
  in
  Prog.Straight (Prog.li_insns ra a @ Prog.li_insns rb bv @ [ mk (rd, ra, rb) ])

let branch_kinds = [ Prog.Beq; Bne; Blt; Bge; Bltu; Bgeu ]

let branch_kind r cov =
  let key = function
    | Prog.Beq -> "beq"
    | Bne -> "bne"
    | Blt -> "blt"
    | Bge -> "bge"
    | Bltu -> "bltu"
    | Bgeu -> "bgeu"
  in
  let missing = List.filter (fun k -> Coverage.count cov (key k) = 0) branch_kinds in
  if missing <> [] && Rng.bool r then Rng.choose r missing
  else Rng.choose r branch_kinds

let block r cov =
  match Rng.weighted r
          [ (47, `Straight); (14, `Guard); (11, `Loop); (11, `Call);
            (9, `Medge); (8, `Mret) ]
  with
  | `Straight -> Prog.Straight (body r cov ~len:(Rng.range r 2 7))
  | `Guard ->
      Prog.Guard
        {
          kind = branch_kind r cov;
          rs1 = wreg r;
          rs2 = wreg r;
          body = body r cov ~len:(Rng.range r 1 5);
        }
  | `Loop -> Prog.Loop { count = Rng.range r 1 8; body = body r cov ~len:(Rng.range r 1 5) }
  | `Call -> Prog.Call { via_jalr = Rng.bool r; body = body r cov ~len:(Rng.range r 1 5) }
  | `Medge -> medge_block r cov
  | `Mret -> Prog.Mret

let program r cov ~size = List.init (max 1 size) (fun _ -> block r cov)

(* --- random policies (as in the original Firmware.Fuzz) ------------------ *)

let policy r img =
  let lat =
    match Rng.int r 3 with
    | 0 -> Dift.Lattice.integrity ()
    | 1 -> Dift.Lattice.confidentiality ()
    | _ -> Dift.Lattice.ifp3 ()
  in
  let n = Dift.Lattice.size lat in
  let tag () = Rng.int r n in
  let org = img.Rv32_asm.Image.org in
  let limit = Rv32_asm.Image.limit img in
  let regions =
    List.init (Rng.int r 4) (fun i ->
        let lo = org + Rng.int r (limit - org) in
        let hi = min (limit - 1) (lo + Rng.int r 64) in
        Dift.Policy.region ~name:(Printf.sprintf "r%d" i) ~lo ~hi ~tag:(tag ()))
  in
  let opt f = if Rng.bool r then Some (f ()) else None in
  (* Fetch clearance must admit the program region or nothing runs: use the
     lattice top when enabled. *)
  let top = Option.get (Dift.Lattice.top lat) in
  Dift.Policy.make ~lattice:lat ~default_tag:(tag ()) ~classification:regions
    ~output_clearance:(match opt tag with Some t -> [ ("uart", t) ] | None -> [])
    ?exec_fetch:(if Rng.bool r then Some top else None)
    ?exec_branch:(opt tag) ?exec_mem_addr:(opt tag) ()
