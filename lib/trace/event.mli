(** A single trace event. One record type covers every stream so the ring
    buffer can preallocate its slots and refill them in place — recording
    an event allocates nothing.

    Field meaning by {!kind}:
    - [Insn]: [addr] = pc, [data] = instruction word, [tag] = LUB of the
      source-operand register tags, [tainted] = that LUB is above bottom.
    - [Tlm_read]/[Tlm_write]: [addr] = global bus address, [data] = payload
      length in bytes, [tag] = LUB of the payload byte tags, [text] =
      target peripheral name.
    - [Trap]: [addr] = interrupted pc on entry / restored pc on return,
      [data] = raw [mcause] on entry (bit 31 set for interrupts) / target
      privilege on return, [text] = description (built by the platform,
      which knows the cause names).
    - [Violation]: [addr] = pc (-1 if unknown), [tag] = offending data
      tag, [text] = violation kind and detail.
    - [Declass]: [data] = source tag, [tag] = result tag, [text] = where.
    - [Note]: [text] only. *)

type kind =
  | Insn
  | Tlm_read
  | Tlm_write
  | Trap
  | Violation
  | Declass
  | Note

type t = {
  mutable time : int;  (** Simulation time, picoseconds. *)
  mutable kind : kind;
  mutable addr : int;
  mutable data : int;
  mutable tag : Dift.Lattice.tag;
  mutable tainted : bool;
  mutable text : string;
}

val make : unit -> t
(** A blank event (used to preallocate ring slots). *)

val copy : t -> t
(** Snapshot of a (possibly soon-overwritten) ring slot. *)

val kind_name : kind -> string
