type t = {
  slots : Event.t array;
  mutable next : int;  (* index of the slot the next event will use *)
  mutable total : int;  (* events ever recorded (monotonic) *)
}

let create n =
  if n <= 0 then invalid_arg "Ring.create: size must be positive";
  { slots = Array.init n (fun _ -> Event.make ()); next = 0; total = 0 }

let capacity t = Array.length t.slots
let total t = t.total
let length t = min t.total (Array.length t.slots)

let emit t =
  let slot = t.slots.(t.next) in
  t.next <- (t.next + 1) mod Array.length t.slots;
  t.total <- t.total + 1;
  slot

let iter t f =
  let cap = Array.length t.slots in
  let n = length t in
  (* Oldest retained event sits [n] slots behind the write cursor. *)
  let start = (t.next - n + cap * 2) mod cap in
  for i = 0 to n - 1 do
    f t.slots.((start + i) mod cap)
  done

let last t n =
  let acc = ref [] in
  iter t (fun e -> acc := Event.copy e :: !acc);
  let all = List.rev !acc in
  let len = List.length all in
  if len <= n then all else List.filteri (fun i _ -> i >= len - n) all

let clear t =
  t.next <- 0;
  t.total <- 0
