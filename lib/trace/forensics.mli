(** Violation forensics: turn "a violation was raised" into an actionable
    report — what was violated, the last-N event window leading up to it
    (instructions and bus traffic interleaved), the provenance chain of
    the offending tag back to its introducing sources, and policy
    context. Renderable as text ({!pp}) and JSON ({!to_json}). *)

type report = {
  r_violation : Dift.Violation.t option;
      (** [None] when reporting on a run that ended without a violation
          (difftest divergences, e.g.) — the window is still useful. *)
  r_time : int;  (** Time of the newest retained event, ps. *)
  r_window : Event.t list;  (** Snapshot copies, oldest first. *)
  r_chain : Provenance.chain option;
      (** Chain of the violation's [data_tag], when there is one. *)
  r_context : string;  (** Free-form policy / scenario description. *)
  r_tracer : Tracer.t;  (** For lattice names and disassembly. *)
}

val make :
  ?window:int ->
  ?violation:Dift.Violation.t ->
  ?context:string ->
  Tracer.t ->
  unit ->
  report
(** Snapshot a report from the tracer's current state. [window] is the
    number of trailing events to capture (default 32). *)

val pp : Format.formatter -> report -> unit
val to_string : report -> string
val to_json : report -> Jsonkit.Json.t
val violation_to_json : Dift.Lattice.t -> Dift.Violation.t -> Jsonkit.Json.t
