(** The graph-store sink: capture a run's complete provenance stream
    into an [Iftgraph] builder, alongside (not instead of) the streaming
    JSONL sink.

    [attach] claims the tracer's provenance observer and its [on_graph]
    slot; commits are fed into an incremental {!Iftgraph.Build.t} as the
    simulation runs. Call {!finish} (or {!write_file}) at the end — it
    stamps the bounded-provenance drop counters into the store header
    and freezes the graph. The sink keeps recording after a [finish];
    {!detach} releases the hooks. *)

type t

val attach : ?context:string -> Tracer.t -> t
(** Install the sink on [tracer]'s provenance observer and [on_graph]
    slots (displacing any previous occupants of those two slots;
    [on_record] / {!Sink.stream_jsonl} is untouched). *)

val builder : t -> Iftgraph.Build.t

val finish : t -> Iftgraph.Store.t
(** Sync drop counters from the tracer's provenance and freeze the
    current graph. The sink stays attached and usable. *)

val write_file : t -> string -> unit
(** [finish] and write the store to a file. *)

val detach : t -> unit
(** Release both hook slots; idempotent. *)
