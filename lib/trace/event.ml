type kind =
  | Insn
  | Tlm_read
  | Tlm_write
  | Trap
  | Violation
  | Declass
  | Note

type t = {
  mutable time : int;
  mutable kind : kind;
  mutable addr : int;
  mutable data : int;
  mutable tag : Dift.Lattice.tag;
  mutable tainted : bool;
  mutable text : string;
}

let make () =
  {
    time = 0;
    kind = Note;
    addr = 0;
    data = 0;
    tag = 0;
    tainted = false;
    text = "";
  }

let copy e =
  {
    time = e.time;
    kind = e.kind;
    addr = e.addr;
    data = e.data;
    tag = e.tag;
    tainted = e.tainted;
    text = e.text;
  }

let kind_name = function
  | Insn -> "insn"
  | Tlm_read -> "rd"
  | Tlm_write -> "wr"
  | Trap -> "trap"
  | Violation -> "violation"
  | Declass -> "declass"
  | Note -> "note"
