(** Fixed-size ring buffer of trace events.

    All slots are preallocated at {!create}; {!emit} hands out the next
    slot for the caller to fill in place, so steady-state recording does
    not allocate. When the ring is full the oldest event is overwritten —
    the ring always retains the most recent [capacity] events, which is
    exactly the window a forensic report wants. *)

type t

val create : int -> t
(** [create n] makes a ring retaining the last [n] events.
    Raises [Invalid_argument] if [n <= 0]. *)

val capacity : t -> int

val total : t -> int
(** Events ever recorded, including overwritten ones. *)

val length : t -> int
(** Events currently retained ([min total capacity]). *)

val emit : t -> Event.t
(** The slot for the next event; the caller must overwrite every field it
    cares about (slots are recycled, stale values remain otherwise). *)

val iter : t -> (Event.t -> unit) -> unit
(** Iterate retained events oldest → newest. The callback receives live
    slots; use {!Event.copy} to keep one past the callback. *)

val last : t -> int -> Event.t list
(** Copies of the most recent [n] retained events, oldest first. *)

val clear : t -> unit
