module L = Dift.Lattice

type source = {
  s_id : int;
  s_origin : string;
  s_addr : int option;
  s_time : int;
  s_tag : L.tag;
}

type parent = P_merge of L.tag * L.tag | P_declass of L.tag

type step =
  | Introduced of source
  | Merged of { result : L.tag; a : L.tag; b : L.tag }
  | Declassified of { result : L.tag; from : L.tag }
  | Via of { tag : L.tag; channel : string }

type chain = { c_tag : L.tag; c_steps : step list; c_sources : source list }

type event =
  | Ev_source of { origin : string; addr : int option; time : int; tag : L.tag }
  | Ev_merge of { a : L.tag; b : L.tag; result : L.tag }
  | Ev_declass of { from : L.tag; result : L.tag }
  | Ev_via of { channel : string; tag : L.tag }

type t = {
  lat : L.t;
  max_edges : int;
  max_sources : int;
  (* Indexed by tag; lists are short (bounded) so linear scans are fine
     and the dedup checks allocate nothing. Newest first. *)
  sources : source list array;
  parents : parent list array;
  vias : string list array;
  mutable next_id : int;
  mutable dropped_edges : int;
  mutable dropped_sources : int;
  mutable observer : (event -> unit) option;
}

let create ?(max_edges_per_tag = 16) ?(max_sources_per_tag = 8) lat =
  let n = L.size lat in
  {
    lat;
    max_edges = max_edges_per_tag;
    max_sources = max_sources_per_tag;
    sources = Array.make n [];
    parents = Array.make n [];
    vias = Array.make n [];
    next_id = 0;
    dropped_edges = 0;
    dropped_sources = 0;
    observer = None;
  }

let lattice t = t.lat
let dropped t = t.dropped_edges + t.dropped_sources
let dropped_edges t = t.dropped_edges
let dropped_sources t = t.dropped_sources
let set_observer t f = t.observer <- f

(* The observer fires on every genuine event, before the budget checks:
   a sink (the graph store) sees the complete stream even where the
   bounded in-memory graph drops. *)
let notify t ev = match t.observer with None -> () | Some f -> f ev

let in_range t tag = tag >= 0 && tag < Array.length t.sources

let source t ~origin ?addr ~time tag =
  if not (in_range t tag) then invalid_arg "Provenance.source: tag out of range";
  notify t (Ev_source { origin; addr; time; tag });
  match
    List.find_opt
      (fun s -> String.equal s.s_origin origin && s.s_addr = addr)
      t.sources.(tag)
  with
  | Some s -> s.s_id
  | None ->
      if List.length t.sources.(tag) >= t.max_sources then (
        t.dropped_sources <- t.dropped_sources + 1;
        -1)
      else begin
        let id = t.next_id in
        t.next_id <- id + 1;
        t.sources.(tag) <-
          { s_id = id; s_origin = origin; s_addr = addr; s_time = time; s_tag = tag }
          :: t.sources.(tag);
        id
      end

let add_parent t tag p =
  let ps = t.parents.(tag) in
  if List.mem p ps then ()
  else if List.length ps >= t.max_edges then
    t.dropped_edges <- t.dropped_edges + 1
  else t.parents.(tag) <- p :: ps

let record_merge t ~a ~b ~result =
  (* Only genuine joins matter: if the result equals an input, walking
     that input's provenance already covers it. This also keeps the hot
     all-bottom case (lub pub pub = pub) free of any bookkeeping. *)
  if result <> a && result <> b && in_range t result then begin
    notify t (Ev_merge { a; b; result });
    add_parent t result (P_merge (a, b))
  end

let record_declass t ~from ~result =
  if from <> result && in_range t result then begin
    notify t (Ev_declass { from; result });
    add_parent t result (P_declass from)
  end

let record_via t ~channel tag =
  if in_range t tag then begin
    notify t (Ev_via { channel; tag });
    let vs = t.vias.(tag) in
    if List.mem channel vs then ()
    else if List.length vs >= t.max_edges then
      t.dropped_edges <- t.dropped_edges + 1
    else t.vias.(tag) <- channel :: vs
  end

let sources_of t tag = if in_range t tag then List.rev t.sources.(tag) else []

let sources t =
  Array.to_list t.sources |> List.concat |> List.sort (fun a b -> compare a.s_id b.s_id)

let chain t tag =
  if not (in_range t tag) then { c_tag = tag; c_steps = []; c_sources = [] }
  else begin
    let n = Array.length t.sources in
    let visited = Array.make n false in
    let steps = ref [] and srcs = ref [] in
    let queue = Queue.create () in
    Queue.add tag queue;
    visited.(tag) <- true;
    let push u = if in_range t u && not visited.(u) then (visited.(u) <- true; Queue.add u queue) in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun s ->
          steps := Introduced s :: !steps;
          srcs := s :: !srcs)
        (List.rev t.sources.(u));
      List.iter
        (fun ch -> steps := Via { tag = u; channel = ch } :: !steps)
        (List.rev t.vias.(u));
      List.iter
        (fun p ->
          match p with
          | P_merge (a, b) ->
              steps := Merged { result = u; a; b } :: !steps;
              push a;
              push b
          | P_declass from ->
              steps := Declassified { result = u; from } :: !steps;
              push from)
        (List.rev t.parents.(u))
    done;
    {
      c_tag = tag;
      c_steps = List.rev !steps;
      c_sources = List.sort (fun a b -> compare a.s_id b.s_id) !srcs;
    }
  end

let pp_source lat ppf s =
  Format.fprintf ppf "#%d %s%s -> %s at t=%dps" s.s_id s.s_origin
    (match s.s_addr with
    | Some a -> Printf.sprintf " @0x%08x" a
    | None -> "")
    (L.name lat s.s_tag) s.s_time

let pp_step lat ppf = function
  | Introduced s -> Format.fprintf ppf "introduced: %a" (pp_source lat) s
  | Merged { result; a; b } ->
      Format.fprintf ppf "%s = lub(%s, %s)" (L.name lat result) (L.name lat a)
        (L.name lat b)
  | Declassified { result; from } ->
      Format.fprintf ppf "%s declassified-from %s" (L.name lat result)
        (L.name lat from)
  | Via { tag; channel } ->
      Format.fprintf ppf "%s carried via %s" (L.name lat tag) channel

let pp_chain lat ppf c =
  Format.fprintf ppf "@[<v>provenance of %s:" (L.name lat c.c_tag);
  if c.c_steps = [] then Format.fprintf ppf "@,  (no recorded introductions)"
  else
    List.iter (fun s -> Format.fprintf ppf "@,  %a" (pp_step lat) s) c.c_steps;
  (match c.c_sources with
  | [] -> ()
  | srcs ->
      Format.fprintf ppf "@,terminal sources:";
      List.iter (fun s -> Format.fprintf ppf "@,  %a" (pp_source lat) s) srcs);
  Format.fprintf ppf "@]"

module J = Jsonkit.Json

let source_to_json lat s =
  J.Obj
    ([ ("id", J.num_of_int s.s_id); ("origin", J.Str s.s_origin) ]
    @ (match s.s_addr with
      | Some a -> [ ("addr", J.num_of_int a) ]
      | None -> [])
    @ [
        ("time_ps", J.num_of_int s.s_time);
        ("tag", J.Str (L.name lat s.s_tag));
      ])

let step_to_json lat = function
  | Introduced s ->
      J.Obj [ ("kind", J.Str "introduced"); ("source", source_to_json lat s) ]
  | Merged { result; a; b } ->
      J.Obj
        [
          ("kind", J.Str "merge");
          ("result", J.Str (L.name lat result));
          ("a", J.Str (L.name lat a));
          ("b", J.Str (L.name lat b));
        ]
  | Declassified { result; from } ->
      J.Obj
        [
          ("kind", J.Str "declass");
          ("result", J.Str (L.name lat result));
          ("from", J.Str (L.name lat from));
        ]
  | Via { tag; channel } ->
      J.Obj
        [
          ("kind", J.Str "via");
          ("tag", J.Str (L.name lat tag));
          ("channel", J.Str channel);
        ]

let chain_to_json lat c =
  J.Obj
    [
      ("tag", J.Str (L.name lat c.c_tag));
      ("steps", J.List (List.map (step_to_json lat) c.c_steps));
      ("sources", J.List (List.map (source_to_json lat) c.c_sources));
    ]
