module J = Jsonkit.Json
module L = Dift.Lattice

type report = {
  r_violation : Dift.Violation.t option;
  r_time : int;
  r_window : Event.t list;
  r_chain : Provenance.chain option;
  r_context : string;
  r_tracer : Tracer.t;
}

let last_time tracer =
  let t = ref 0 in
  Ring.iter tracer.Tracer.ring (fun e -> t := e.Event.time);
  !t

let make ?(window = 32) ?violation ?(context = "") tracer () =
  {
    r_violation = violation;
    r_time = last_time tracer;
    r_window = Ring.last tracer.Tracer.ring window;
    r_chain =
      Option.map
        (fun (v : Dift.Violation.t) ->
          Provenance.chain tracer.Tracer.prov v.Dift.Violation.data_tag)
        violation;
    r_context = context;
    r_tracer = tracer;
  }

let pp_event tracer ppf (e : Event.t) =
  let tag_name tag =
    if tag >= 0 && tag < L.size tracer.Tracer.lat then L.name tracer.Tracer.lat tag
    else string_of_int tag
  in
  match e.Event.kind with
  | Event.Insn ->
      Format.fprintf ppf "[%10dps] %08x: %-28s%s" e.Event.time e.Event.addr
        (tracer.Tracer.disasm e.Event.data)
        (if e.Event.tainted then " ; tainted " ^ tag_name e.Event.tag else "")
  | Event.Tlm_read | Event.Tlm_write ->
      Format.fprintf ppf "[%10dps] bus %s %s addr=0x%08x len=%d tag=%s"
        e.Event.time
        (Event.kind_name e.Event.kind)
        e.Event.text e.Event.addr e.Event.data (tag_name e.Event.tag)
  | Event.Trap ->
      Format.fprintf ppf "[%10dps] trap %s (pc=0x%08x)" e.Event.time
        e.Event.text e.Event.addr
  | Event.Violation ->
      let pc =
        if e.Event.addr < 0 then "?"
        else Printf.sprintf "0x%08x" e.Event.addr
      in
      Format.fprintf ppf "[%10dps] !! VIOLATION %s (pc=%s tag=%s)" e.Event.time
        e.Event.text pc (tag_name e.Event.tag)
  | Event.Declass ->
      Format.fprintf ppf "[%10dps] declassify %s: %s -> %s" e.Event.time
        e.Event.text (tag_name e.Event.data) (tag_name e.Event.tag)
  | Event.Note -> Format.fprintf ppf "[%10dps] note: %s" e.Event.time e.Event.text

let pp ppf r =
  let lat = r.r_tracer.Tracer.lat in
  Format.fprintf ppf "@[<v>=== DIFT forensic report ===@,";
  (match r.r_violation with
  | Some v -> Format.fprintf ppf "violation: %a@," (Dift.Violation.pp lat) v
  | None -> Format.fprintf ppf "violation: (none recorded)@,");
  Format.fprintf ppf "sim time: %d ps@," r.r_time;
  if r.r_context <> "" then Format.fprintf ppf "context: %s@," r.r_context;
  Format.fprintf ppf "last %d events (of %d recorded):"
    (List.length r.r_window)
    (Tracer.events_recorded r.r_tracer);
  List.iter
    (fun e -> Format.fprintf ppf "@,  %a" (pp_event r.r_tracer) e)
    r.r_window;
  (match r.r_chain with
  | Some c -> Format.fprintf ppf "@,%a" (Provenance.pp_chain lat) c
  | None -> ());
  (let de = Provenance.dropped_edges r.r_tracer.Tracer.prov in
   let ds = Provenance.dropped_sources r.r_tracer.Tracer.prov in
   if de > 0 || ds > 0 then
     Format.fprintf ppf
       "@,(provenance truncated by per-tag budgets: %d edges, %d sources \
        dropped)"
       de ds);
  Format.fprintf ppf "@]"

let to_string r = Format.asprintf "%a" pp r

let violation_to_json lat (v : Dift.Violation.t) =
  J.Obj
    ([
       ("kind", J.Str (Dift.Violation.kind_name v.Dift.Violation.kind));
       ("data_tag", J.Str (L.name lat v.Dift.Violation.data_tag));
       ("required_tag", J.Str (L.name lat v.Dift.Violation.required_tag));
     ]
    @ (match v.Dift.Violation.pc with
      | Some pc -> [ ("pc", J.num_of_int pc) ]
      | None -> [])
    @
    match v.Dift.Violation.detail with
    | "" -> []
    | d -> [ ("detail", J.Str d) ])

let to_json r =
  let lat = r.r_tracer.Tracer.lat in
  J.Obj
    ((match r.r_violation with
     | Some v -> [ ("violation", violation_to_json lat v) ]
     | None -> [])
    @ [
        ("time_ps", J.num_of_int r.r_time);
        ( "window",
          J.List (List.map (Sink.event_json r.r_tracer) r.r_window) );
      ]
    @ (match r.r_chain with
      | Some c -> [ ("chain", Provenance.chain_to_json lat c) ]
      | None -> [])
    @ (match r.r_context with
      | "" -> []
      | ctx -> [ ("context", J.Str ctx) ])
    @ [
        ( "dropped_edges",
          J.num_of_int (Provenance.dropped_edges r.r_tracer.Tracer.prov) );
        ( "dropped_sources",
          J.num_of_int (Provenance.dropped_sources r.r_tracer.Tracer.prov) );
      ])
