(* The graph-store sink: captures the complete provenance stream of a
   run into an Iftgraph.Build.t, for persisting as a .iftg store.

   Two hook points, chosen so the sink composes with the existing
   machinery instead of replacing it:

   - Provenance.set_observer feeds seeds / merges / declassifications /
     via hops. The observer fires before dedup and budget checks, so the
     store holds the whole graph even where the bounded in-memory
     provenance coalesces or drops (the store header still carries the
     in-memory drop counters, flagging runs whose live forensic chains
     are truncated).
   - Tracer.set_on_graph (the second observer slot — stream_jsonl keeps
     on_record) stamps the current pc/time onto subsequent commits and
     records violation sink nodes. *)

module L = Dift.Lattice

type t = {
  tracer : Tracer.t;
  builder : Iftgraph.Build.t;
  mutable attached : bool;
}

let classes lat = List.init (L.size lat) (L.name lat)

let on_prov builder = function
  | Provenance.Ev_source { origin; addr; time; tag } ->
      (match addr with
      | Some addr -> Iftgraph.Build.add_seed builder ~origin ~addr ~time ~tag ()
      | None -> Iftgraph.Build.add_seed builder ~origin ~time ~tag ())
  | Provenance.Ev_merge { a; b; result } ->
      Iftgraph.Build.add_merge builder ~a ~b ~result
  | Provenance.Ev_declass { from; result } ->
      Iftgraph.Build.add_declass builder ~from ~result
  | Provenance.Ev_via { channel; tag } ->
      Iftgraph.Build.add_via builder ~channel ~tag

let on_event builder (e : Event.t) =
  match e.Event.kind with
  | Event.Insn ->
      Iftgraph.Build.set_pos builder ~time:e.Event.time ~pc:e.Event.addr
  | Event.Violation ->
      Iftgraph.Build.add_violation builder ~what:e.Event.text ~pc:e.Event.addr
        ~time:e.Event.time ~tag:e.Event.tag
  | Event.Tlm_read | Event.Tlm_write | Event.Trap | Event.Declass
  | Event.Note ->
      ()

let attach ?(context = "") tracer =
  let builder =
    Iftgraph.Build.create ~context ~classes:(classes tracer.Tracer.lat) ()
  in
  Provenance.set_observer tracer.Tracer.prov (Some (on_prov builder));
  Tracer.set_on_graph tracer (Some (on_event builder));
  { tracer; builder; attached = true }

let builder t = t.builder

let detach t =
  if t.attached then begin
    Provenance.set_observer t.tracer.Tracer.prov None;
    Tracer.set_on_graph t.tracer None;
    t.attached <- false
  end

let finish t =
  Iftgraph.Build.set_dropped t.builder
    ~edges:(Provenance.dropped_edges t.tracer.Tracer.prov)
    ~sources:(Provenance.dropped_sources t.tracer.Tracer.prov);
  Iftgraph.Build.finish t.builder

let write_file t path = Iftgraph.Store.write_file (finish t) path
