(** Taint provenance: where did this tag come from?

    Granularity is the security class (lattice tag), matching the DIFT
    engine itself: every taint *introduction* (a peripheral seeding a tag
    into the system, or a policy region classifying memory) registers a
    {!source}, and observed propagation records bounded edges —
    [result = lub(a, b)] merges, declassifications, and "carried via
    DMA"-style transfer hops. {!chain} then walks any tag seen at a sink
    back to the set of sources that introduced it.

    Everything is bounded: per tag at most [max_sources_per_tag] sources
    and [max_edges_per_tag] merge/declass edges are retained (duplicates
    are coalesced first; overflow increments {!dropped}). Recording is a
    few list scans over those short lists and allocates only when a new
    source/edge is actually retained, so a hot loop that keeps producing
    the same joins settles into allocation-free dedup hits. *)

type source = {
  s_id : int;  (** Dense introduction id, in registration order. *)
  s_origin : string;  (** Peripheral / region name, e.g. ["sensor"]. *)
  s_addr : int option;  (** Bus address or region base, when meaningful. *)
  s_time : int;  (** Simulation time of first registration, ps. *)
  s_tag : Dift.Lattice.tag;  (** The class this source introduces. *)
}

type step =
  | Introduced of source
  | Merged of { result : Dift.Lattice.tag; a : Dift.Lattice.tag; b : Dift.Lattice.tag }
  | Declassified of { result : Dift.Lattice.tag; from : Dift.Lattice.tag }
  | Via of { tag : Dift.Lattice.tag; channel : string }

type chain = {
  c_tag : Dift.Lattice.tag;
  c_steps : step list;  (** Breadth-first from the queried tag. *)
  c_sources : source list;  (** Terminal introductions, by id. *)
}

type t

val create :
  ?max_edges_per_tag:int -> ?max_sources_per_tag:int -> Dift.Lattice.t -> t
(** Defaults: 16 edges, 8 sources per tag. *)

val lattice : t -> Dift.Lattice.t

val source :
  t -> origin:string -> ?addr:int -> time:int -> Dift.Lattice.tag -> int
(** Register a taint introduction; returns its id. Re-registering the same
    [(origin, addr)] pair for the same tag returns the existing id (so
    peripherals may call this on every frame). Returns [-1] if the
    per-tag source budget is exhausted. *)

val record_merge :
  t -> a:Dift.Lattice.tag -> b:Dift.Lattice.tag -> result:Dift.Lattice.tag -> unit
(** Record [result = lub(a, b)]. A no-op unless it is a genuine join
    ([result] differs from both inputs) — propagation that keeps a tag
    unchanged is already covered by that tag's own chain. *)

val record_declass :
  t -> from:Dift.Lattice.tag -> result:Dift.Lattice.tag -> unit

val record_via : t -> channel:string -> Dift.Lattice.tag -> unit
(** Note that [tag] travelled through a named transfer channel (DMA,
    crypto unit, ...) without changing class. *)

val sources_of : t -> Dift.Lattice.tag -> source list
(** Sources directly introducing [tag], oldest first. *)

val sources : t -> source list
(** Every registered source, by id. *)

val chain : t -> Dift.Lattice.tag -> chain
(** Walk back from [tag] through merge/declass edges to the introducing
    sources. Bounded by the lattice size (each tag visited once). *)

val dropped : t -> int
(** Edges/sources discarded because a per-tag budget was exhausted
    ([dropped_edges + dropped_sources]). *)

val dropped_edges : t -> int
(** Merge/declass/via edges discarded on per-tag budget overflow. *)

val dropped_sources : t -> int
(** Source introductions discarded on per-tag budget overflow. *)

(** {1 Streaming observation}

    A genuine provenance event, fired {e before} dedup and budget
    checks: an observer (the IFT graph-store sink) sees the complete
    stream even where the bounded in-memory graph coalesces or drops. *)
type event =
  | Ev_source of {
      origin : string;
      addr : int option;
      time : int;
      tag : Dift.Lattice.tag;
    }
  | Ev_merge of {
      a : Dift.Lattice.tag;
      b : Dift.Lattice.tag;
      result : Dift.Lattice.tag;
    }  (** Genuine joins only ([result] differs from both inputs). *)
  | Ev_declass of { from : Dift.Lattice.tag; result : Dift.Lattice.tag }
  | Ev_via of { channel : string; tag : Dift.Lattice.tag }

val set_observer : t -> (event -> unit) option -> unit
(** Install (or remove) the single observer slot. *)

val pp_source : Dift.Lattice.t -> Format.formatter -> source -> unit
val pp_chain : Dift.Lattice.t -> Format.formatter -> chain -> unit
val source_to_json : Dift.Lattice.t -> source -> Jsonkit.Json.t
val chain_to_json : Dift.Lattice.t -> chain -> Jsonkit.Json.t
