(** The per-simulation trace bundle: an event {!Ring.t} plus a
    {!Provenance.t} graph over one lattice. A [Tracer.t] is handed to
    [Vp.Soc.create ?tracer], which wires the core / bus / router /
    monitor hooks into it; everything here is plain recording with no
    simulator dependencies. *)

type t = {
  ring : Ring.t;
  prov : Provenance.t;
  lat : Dift.Lattice.t;
  mutable disasm : int -> string;
      (** Render an instruction word for reports; defaults to a hex
          [.word] form. The VP installs the RV32 disassembler. *)
  mutable on_record : (Event.t -> unit) option;
      (** Streaming observer; see {!set_on_record}. *)
  mutable on_graph : (Event.t -> unit) option;
      (** Second observer slot, reserved for the {!Graph} sink so a
          graph store can record alongside a streaming JSONL sink. *)
}

val create : ?ring_size:int -> Dift.Lattice.t -> t
(** Default ring size: 4096 events. *)

val set_disasm : t -> (int -> string) -> unit

val set_on_record : t -> (Event.t -> unit) option -> unit
(** Install (or remove) a streaming observer called with every recorded
    event, after the ring slot is filled. Unlike the ring (which retains
    only the newest [ring_size] events), the observer sees the complete
    stream — {!Sink.stream_jsonl} uses it for unbounded trace files, and
    the determinism tests use it to compare full event streams. The slot
    is recycled by the next record: consume or {!Event.copy} it before
    returning. *)

val set_on_graph : t -> (Event.t -> unit) option -> unit
(** The independent second observer slot (same contract as
    {!set_on_record}); {!Graph.attach} uses it so graph capture composes
    with a streaming sink. *)

val events_recorded : t -> int
(** Total events ever pushed into the ring (monotonic). *)

(** Recorders — one per event shape; [time] is simulation time in ps.
    Each fills a recycled ring slot: no allocation. *)

val record_insn :
  t -> time:int -> pc:int -> word:int -> tag:Dift.Lattice.tag -> tainted:bool -> unit

val record_tlm :
  t ->
  time:int ->
  write:bool ->
  addr:int ->
  len:int ->
  tag:Dift.Lattice.tag ->
  target:string ->
  unit

val record_trap : t -> time:int -> addr:int -> code:int -> text:string -> unit
(** A trap entry or [mret] (see {!Event.kind} for the field meaning); the
    caller formats [text] since the tracer knows nothing about cause
    names. *)

val record_violation :
  t -> time:int -> pc:int -> tag:Dift.Lattice.tag -> what:string -> unit

val record_declass :
  t ->
  time:int ->
  from_tag:Dift.Lattice.tag ->
  to_tag:Dift.Lattice.tag ->
  where:string ->
  unit

val record_note : t -> time:int -> string -> unit
