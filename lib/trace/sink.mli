(** Trace output sinks. Both render the events currently retained in the
    tracer's ring, oldest first; rendering happens offline (after or
    outside the simulation), so allocation here is not a concern. *)

val event_json : Tracer.t -> Event.t -> Jsonkit.Json.t
(** One event as a JSON object ([t] = time in ps, [k] = kind, then
    kind-specific fields; see {!Event.kind}). *)

val write_jsonl : Tracer.t -> out_channel -> unit
(** One {!event_json} object per line. *)

val stream_jsonl : Tracer.t -> out_channel -> unit
(** Install the tracer's {!Tracer.set_on_record} observer to append one
    JSONL line per event as it happens. Unlike {!write_jsonl} this sees
    the complete stream, not just the ring's retained tail — it is what
    [vp_run --trace-out] and the CI determinism job rely on (trace files
    from a checkpointed run concatenate to the uninterrupted run's file).
    The caller owns the channel (flush/close it after the run). *)

val stop_stream : Tracer.t -> unit
(** Remove the observer installed by {!stream_jsonl}. *)

val write_chrome : Tracer.t -> out_channel -> unit
(** A Chrome [trace_event] document (load via [about://tracing] or
    [ui.perfetto.dev]): instruction events on a synthetic "cpu" thread,
    TLM transactions on a "bus" thread, violations as global instants.
    Simulation ps are mapped onto the format's microsecond timestamps. *)

val write_file : Tracer.t -> format:[ `Jsonl | `Chrome ] -> string -> unit
