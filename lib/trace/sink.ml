module J = Jsonkit.Json
module L = Dift.Lattice

let tag_name t tag =
  if tag >= 0 && tag < L.size t.Tracer.lat then L.name t.Tracer.lat tag
  else string_of_int tag

let event_json t (e : Event.t) =
  let base =
    [ ("t", J.num_of_int e.Event.time); ("k", J.Str (Event.kind_name e.Event.kind)) ]
  in
  let rest =
    match e.Event.kind with
    | Event.Insn ->
        [
          ("pc", J.num_of_int e.Event.addr);
          ("word", J.num_of_int e.Event.data);
          ("asm", J.Str (t.Tracer.disasm e.Event.data));
          ("tag", J.Str (tag_name t e.Event.tag));
          ("tainted", J.Bool e.Event.tainted);
        ]
    | Event.Tlm_read | Event.Tlm_write ->
        [
          ("addr", J.num_of_int e.Event.addr);
          ("len", J.num_of_int e.Event.data);
          ("tag", J.Str (tag_name t e.Event.tag));
          ("target", J.Str e.Event.text);
        ]
    | Event.Trap ->
        [
          ("pc", J.num_of_int e.Event.addr);
          ("code", J.num_of_int e.Event.data);
          ("what", J.Str e.Event.text);
        ]
    | Event.Violation ->
        [
          ("pc", J.num_of_int e.Event.addr);
          ("tag", J.Str (tag_name t e.Event.tag));
          ("what", J.Str e.Event.text);
        ]
    | Event.Declass ->
        [
          ("from", J.Str (tag_name t e.Event.data));
          ("to", J.Str (tag_name t e.Event.tag));
          ("where", J.Str e.Event.text);
        ]
    | Event.Note -> [ ("text", J.Str e.Event.text) ]
  in
  J.Obj (base @ rest)

let write_jsonl t oc =
  Ring.iter t.Tracer.ring (fun e ->
      output_string oc (J.to_string (event_json t e));
      output_char oc '\n')

let stream_jsonl t oc =
  Tracer.set_on_record t
    (Some
       (fun e ->
         output_string oc (J.to_string (event_json t e));
         output_char oc '\n'))

let stop_stream t = Tracer.set_on_record t None

(* Chrome about://tracing `trace_event` format: instant events on two
   synthetic threads (cpu = instructions, bus = TLM transactions), with
   simulation picoseconds mapped onto the format's microsecond [ts]. *)
let write_chrome t oc =
  let thread tid name =
    J.Obj
      [
        ("name", J.Str "thread_name");
        ("ph", J.Str "M");
        ("pid", J.num_of_int 0);
        ("tid", J.num_of_int tid);
        ("args", J.Obj [ ("name", J.Str name) ]);
      ]
  in
  let evs = ref [ thread 2 "bus"; thread 1 "cpu" ] in
  Ring.iter t.Tracer.ring (fun e ->
      let ts = float_of_int e.Event.time /. 1e6 in
      let instant ?(scope = "t") ~tid name args =
        J.Obj
          [
            ("name", J.Str name);
            ("ph", J.Str "i");
            ("s", J.Str scope);
            ("ts", J.Num ts);
            ("pid", J.num_of_int 0);
            ("tid", J.num_of_int tid);
            ("args", J.Obj args);
          ]
      in
      let ev =
        match e.Event.kind with
        | Event.Insn ->
            instant ~tid:1
              (t.Tracer.disasm e.Event.data)
              [
                ("pc", J.num_of_int e.Event.addr);
                ("tag", J.Str (tag_name t e.Event.tag));
                ("tainted", J.Bool e.Event.tainted);
              ]
        | Event.Tlm_read | Event.Tlm_write ->
            instant ~tid:2
              (Printf.sprintf "%s %s" (Event.kind_name e.Event.kind) e.Event.text)
              [
                ("addr", J.num_of_int e.Event.addr);
                ("len", J.num_of_int e.Event.data);
                ("tag", J.Str (tag_name t e.Event.tag));
              ]
        | Event.Trap ->
            instant ~tid:1 ("trap: " ^ e.Event.text)
              [
                ("pc", J.num_of_int e.Event.addr);
                ("code", J.num_of_int e.Event.data);
              ]
        | Event.Violation ->
            instant ~scope:"g" ~tid:1
              ("VIOLATION: " ^ e.Event.text)
              [
                ("pc", J.num_of_int e.Event.addr);
                ("tag", J.Str (tag_name t e.Event.tag));
              ]
        | Event.Declass ->
            instant ~tid:2 ("declass @ " ^ e.Event.text)
              [
                ("from", J.Str (tag_name t e.Event.data));
                ("to", J.Str (tag_name t e.Event.tag));
              ]
        | Event.Note -> instant ~tid:1 e.Event.text []
      in
      evs := ev :: !evs);
  let doc =
    J.Obj
      [
        ("traceEvents", J.List (List.rev !evs));
        ("displayTimeUnit", J.Str "ns");
      ]
  in
  output_string oc (J.to_string doc);
  output_char oc '\n'

let write_file t ~format path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      match format with
      | `Jsonl -> write_jsonl t oc
      | `Chrome -> write_chrome t oc)
