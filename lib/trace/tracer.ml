type t = {
  ring : Ring.t;
  prov : Provenance.t;
  lat : Dift.Lattice.t;
  mutable disasm : int -> string;
  mutable on_record : (Event.t -> unit) option;
  mutable on_graph : (Event.t -> unit) option;
}

let default_disasm w = Printf.sprintf ".word 0x%08x" w

let create ?(ring_size = 4096) lat =
  {
    ring = Ring.create ring_size;
    prov = Provenance.create lat;
    lat;
    disasm = default_disasm;
    on_record = None;
    on_graph = None;
  }

let set_disasm t f = t.disasm <- f
let set_on_record t f = t.on_record <- f
let set_on_graph t f = t.on_graph <- f
let events_recorded t = Ring.total t.ring

(* The slot is recycled on the next record_*: observers must consume (or
   copy) the event before returning. *)
let observed t e =
  (match t.on_record with None -> () | Some f -> f e);
  match t.on_graph with None -> () | Some f -> f e

let record_insn t ~time ~pc ~word ~tag ~tainted =
  let e = Ring.emit t.ring in
  e.Event.time <- time;
  e.Event.kind <- Event.Insn;
  e.Event.addr <- pc;
  e.Event.data <- word;
  e.Event.tag <- tag;
  e.Event.tainted <- tainted;
  e.Event.text <- "";
  observed t e

let record_tlm t ~time ~write ~addr ~len ~tag ~target =
  let e = Ring.emit t.ring in
  e.Event.time <- time;
  e.Event.kind <- (if write then Event.Tlm_write else Event.Tlm_read);
  e.Event.addr <- addr;
  e.Event.data <- len;
  e.Event.tag <- tag;
  e.Event.tainted <- false;
  e.Event.text <- target;
  observed t e

let record_trap t ~time ~addr ~code ~text =
  let e = Ring.emit t.ring in
  e.Event.time <- time;
  e.Event.kind <- Event.Trap;
  e.Event.addr <- addr;
  e.Event.data <- code;
  e.Event.tag <- 0;
  e.Event.tainted <- false;
  e.Event.text <- text;
  observed t e

let record_violation t ~time ~pc ~tag ~what =
  let e = Ring.emit t.ring in
  e.Event.time <- time;
  e.Event.kind <- Event.Violation;
  e.Event.addr <- pc;
  e.Event.data <- 0;
  e.Event.tag <- tag;
  e.Event.tainted <- true;
  e.Event.text <- what;
  observed t e

let record_declass t ~time ~from_tag ~to_tag ~where =
  let e = Ring.emit t.ring in
  e.Event.time <- time;
  e.Event.kind <- Event.Declass;
  e.Event.addr <- 0;
  e.Event.data <- from_tag;
  e.Event.tag <- to_tag;
  e.Event.tainted <- false;
  e.Event.text <- where;
  observed t e

let record_note t ~time text =
  let e = Ring.emit t.ring in
  e.Event.time <- time;
  e.Event.kind <- Event.Note;
  e.Event.addr <- 0;
  e.Event.data <- 0;
  e.Event.tag <- 0;
  e.Event.tainted <- false;
  e.Event.text <- text;
  observed t e
