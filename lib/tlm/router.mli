(** Address-mapped interconnect (cf. the VP's TLM bus).

    A router owns a target socket; incoming transactions are dispatched by
    global address to the mapped target whose range contains it, with the
    payload address rewritten to a target-local offset for the duration of
    the downstream call. Unclaimed addresses complete with
    [Address_error].

    Dispatch binary-searches a sorted-by-address array rebuilt on every
    {!map} (mapping is construction-time, dispatch is per transaction), so
    routing costs O(log n) in the number of mapped targets rather than a
    list scan in mapping order. *)

type t

val create : name:string -> unit -> t

val map : t -> lo:int -> hi:int -> Socket.target -> unit
(** Map [lo..hi] (inclusive) to a target. Raises [Invalid_argument] if the
    range is empty or overlaps an existing mapping. *)

val target_socket : t -> Socket.target
(** The socket initiators bind to. *)

val resolve : t -> int -> (Socket.target * int) option
(** [resolve r addr] is the mapped target and local offset, if any — useful
    for direct-memory-interface shortcuts. *)

val mappings : t -> (int * int * string) list
(** [(lo, hi, target-name)] triples in mapping order, for diagnostics. *)

val set_observer : t -> (Payload.t -> string -> unit) option -> unit
(** Install (or clear) a transaction observer, called after each
    successfully dispatched transaction returns — with the payload's
    global address restored — together with the target's name. Unmapped
    (address-error) transactions are not reported. Used by the tracing
    subsystem; one load-and-branch per transaction when unset. *)
