type entry = { lo : int; hi : int; target : Socket.target }

type t = {
  name : string;
  mutable entries : entry list; (* mapping order *)
  mutable sorted : entry array; (* address order, rebuilt by [map] *)
  mutable observer : (Payload.t -> string -> unit) option;
}

let create ~name () =
  { name; entries = []; sorted = [||]; observer = None }

let set_observer r f = r.observer <- f

let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let map r ~lo ~hi target =
  if hi < lo then invalid_arg "Router.map: empty range";
  let e = { lo; hi; target } in
  (match List.find_opt (overlaps e) r.entries with
  | Some clash ->
      invalid_arg
        (Printf.sprintf "Router.map: [0x%x..0x%x] overlaps %s [0x%x..0x%x]" lo
           hi
           (Socket.target_name clash.target)
           clash.lo clash.hi)
  | None -> ());
  r.entries <- r.entries @ [ e ];
  (* Mapping is rare and construction-time; dispatch is per transaction.
     Pay for the sort here so [find] can binary-search. Ranges are
     disjoint (checked above), so ordering by [lo] orders by [hi] too. *)
  let a = Array.of_list r.entries in
  Array.sort (fun a b -> compare a.lo b.lo) a;
  r.sorted <- a

let find r addr =
  let a = r.sorted in
  (* Rightmost entry with [lo <= addr], then a single containment check. *)
  let rec go lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      if a.(mid).lo <= addr then go (mid + 1) hi (Some a.(mid))
      else go lo (mid - 1) best
  in
  match go 0 (Array.length a - 1) None with
  | Some e when addr <= e.hi -> Some e
  | _ -> None

let resolve r addr =
  match find r addr with
  | Some e -> Some (e.target, addr - e.lo)
  | None -> None

let route r payload delay =
  match find r payload.Payload.addr with
  | None ->
      payload.Payload.resp <- Payload.Address_error;
      delay
  | Some e ->
      let global = payload.Payload.addr in
      payload.Payload.addr <- global - e.lo;
      let delay = Socket.call e.target payload delay in
      payload.Payload.addr <- global;
      (match r.observer with
      | Some f -> f payload (Socket.target_name e.target)
      | None -> ());
      delay

let target_socket r = Socket.target ~name:r.name (route r)

let mappings r =
  List.map (fun e -> (e.lo, e.hi, Socket.target_name e.target)) r.entries
