(** The Wilander-Kamkar buffer-overflow / code-injection test suite in its
    RISC-V port (Table I of the paper): 18 attack forms that overflow a
    buffer on the stack or in the Heap/BSS/Data segment to redirect control
    flow into an injected payload, either by overwriting the target
    directly (adjacent overflow) or indirectly (overflowing a pointer, then
    writing through it).

    As in the paper, 8 of the 18 forms are not applicable (N/A) on RISC-V —
    chiefly because the calling convention passes parameters and keeps the
    frame pointer in registers — and the remaining 10 must all be detected
    by the code-injection policy of Section VI-B: program memory classified
    HI, instruction-fetch clearance HI, all external input LI, and the
    payload function classified LI (standing in for truly injected code).

    Attacker input arrives on the UART (hence LI); the payload function
    prints ['P'] and exits with code 7, so an {e undetected} attack is
    observable. *)

type outcome =
  | Detected  (** The DIFT engine raised a violation. *)
  | Missed of int  (** The program ran to completion with this exit code. *)
  | Not_applicable

type attack = {
  id : int;  (** 1..18, matching Table I's rows. *)
  location : string;  (** "Stack" or "Heap/BSS/Data". *)
  target : string;  (** What the overflow corrupts. *)
  technique : string;  (** "Direct" or "Indirect". *)
  applicable : bool;
  na_reason : string;  (** Why the form does not exist on RISC-V. *)
}

val attacks : attack list
(** All 18 rows of Table I, in order. *)

val expected_detected : int list
(** Ids the paper reports as Detected: 3, 5, 6, 7, 9, 10, 11, 13, 14, 17. *)

val image_for : int -> Rv32_asm.Image.t option
(** The attack program, or [None] for N/A rows. *)

val payload_for : int -> Rv32_asm.Image.t -> string
(** The attacker's UART input for an applicable attack (filler bytes plus
    little-endian addresses derived from the image's symbols and the known
    stack layout). *)

val policy : Rv32_asm.Image.t -> Dift.Policy.t
(** The code-injection policy of Section VI-B for this image. *)

val run : ?tracking:bool -> ?tracer:Trace.Tracer.t -> int -> outcome
(** Execute one attack on a fresh SoC (VP+ by default). [tracer] (over a
    structurally identical lattice to {!policy}'s, e.g. a fresh
    [Dift.Lattice.integrity ()]) records the run for forensics. *)
