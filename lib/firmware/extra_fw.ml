module A = Rv32_asm.Asm
module R = Rv32.Reg

(* --- CRC-32 --------------------------------------------------------------- *)

let crc32_reference s =
  let crc = ref 0xffffffff in
  String.iter
    (fun c ->
      crc := !crc lxor Char.code c;
      for _ = 1 to 8 do
        let lsb = !crc land 1 in
        crc := !crc lsr 1;
        if lsb = 1 then crc := !crc lxor 0xedb88320
      done)
    s;
  !crc lxor 0xffffffff

let gen_buffer len = String.init len (fun i -> Char.chr ((i * 131 + 7) land 0xff))

let crc32 ?(len = 1024) p =
  let data = gen_buffer len in
  let expected = crc32_reference data in
  Rt.entry p ();
  A.la p R.s1 "data";
  A.li p R.s2 len;
  A.li p R.s3 0xffffffff (* crc *);
  A.li p R.s4 0xedb88320 (* polynomial *);
  A.label p "byte";
  A.lbu p R.t0 R.s1 0;
  A.xor p R.s3 R.s3 R.t0;
  A.li p R.t1 8;
  A.label p "bit";
  A.andi p R.t2 R.s3 1;
  A.srli p R.s3 R.s3 1;
  A.beqz_l p R.t2 "nopoly";
  A.xor p R.s3 R.s3 R.s4;
  A.label p "nopoly";
  A.addi p R.t1 R.t1 (-1);
  A.bnez_l p R.t1 "bit";
  A.addi p R.s1 R.s1 1;
  A.addi p R.s2 R.s2 (-1);
  A.bnez_l p R.s2 "byte";
  A.not_ p R.s3 R.s3 (* xorout *);
  A.li p R.t0 expected;
  A.bne_l p R.s3 R.t0 "fail";
  Rt.exit_ p ();
  A.label p "fail";
  Rt.exit_ p ~code:1 ();
  A.label p "data";
  A.ascii p data

let crc32_image ?len () =
  let p = A.create () in
  crc32 ?len p;
  A.assemble p

(* --- hello world ----------------------------------------------------------- *)

let hello_msg = "hello, world!\n"

(* Char-sum passes between two prints: keeps the UART share of the
   instruction mix realistic (a few percent) so the workload measures the
   execution engine, not the TLM transport. *)
let hello_passes = 8

let hello ?(rounds = 2000) p =
  (* The classic first program, per the paper's Table II: print the
     greeting over the UART [rounds] times. Each round also char-sums the
     message a few times so the run self-checks against the
     host-computed total. *)
  let char_sum =
    String.fold_left (fun a c -> a + Char.code c) 0 hello_msg
  in
  let expected = rounds * hello_passes * char_sum land 0xffffffff in
  Rt.entry p ();
  A.li p R.s1 rounds;
  A.li p R.s2 0 (* checksum accumulator *);
  A.label p "round";
  A.la p R.a0 "msg";
  A.call p "uart_puts";
  A.li p R.s3 hello_passes;
  A.label p "pass";
  A.la p R.t0 "msg";
  A.label p "csum";
  A.lbu p R.t1 R.t0 0;
  A.beqz_l p R.t1 "csum_done";
  A.add p R.s2 R.s2 R.t1;
  A.addi p R.t0 R.t0 1;
  A.j p "csum";
  A.label p "csum_done";
  A.addi p R.s3 R.s3 (-1);
  A.bnez_l p R.s3 "pass";
  A.addi p R.s1 R.s1 (-1);
  A.bnez_l p R.s1 "round";
  A.li p R.t0 expected;
  A.bne_l p R.s2 R.t0 "fail";
  Rt.exit_ p ();
  A.label p "fail";
  Rt.exit_ p ~code:1 ();
  Rt.emit_uart_putc p;
  Rt.emit_uart_puts p;
  A.label p "msg";
  A.asciz p hello_msg

let hello_image ?rounds () =
  let p = A.create () in
  hello ?rounds p;
  A.assemble p

(* --- integer matrix multiply ---------------------------------------------- *)

let matmul_reference n a b =
  let c = Array.make (n * n) 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0 in
      for k = 0 to n - 1 do
        acc := (!acc + (a.((i * n) + k) * b.((k * n) + j))) land 0xffffffff
      done;
      c.((i * n) + j) <- !acc
    done
  done;
  c

let matmul ?(n = 16) p =
  let a = Array.init (n * n) (fun i -> (i * 7) land 0xff) in
  let b = Array.init (n * n) (fun i -> ((i * 13) + 5) land 0xff) in
  let c = matmul_reference n a b in
  let checksum = Array.fold_left (fun acc v -> (acc + v) land 0xffffffff) 0 c in
  Rt.entry p ();
  (* for i, j: C[i][j] = sum_k A[i][k]*B[k][j]; then checksum C. *)
  A.la p R.s1 "ma";
  A.la p R.s2 "mb";
  A.la p R.s3 "mc";
  A.li p R.s4 0 (* i *);
  A.label p "li";
  A.li p R.s5 0 (* j *);
  A.label p "lj";
  A.li p R.s6 0 (* k *);
  A.li p R.s7 0 (* acc *);
  A.label p "lk";
  (* A[i*n + k] *)
  A.li p R.t0 n;
  A.mul p R.t1 R.s4 R.t0;
  A.add p R.t1 R.t1 R.s6;
  A.slli p R.t1 R.t1 2;
  A.add p R.t1 R.s1 R.t1;
  A.lw p R.t2 R.t1 0;
  (* B[k*n + j] *)
  A.mul p R.t3 R.s6 R.t0;
  A.add p R.t3 R.t3 R.s5;
  A.slli p R.t3 R.t3 2;
  A.add p R.t3 R.s2 R.t3;
  A.lw p R.t4 R.t3 0;
  A.mul p R.t5 R.t2 R.t4;
  A.add p R.s7 R.s7 R.t5;
  A.addi p R.s6 R.s6 1;
  A.li p R.t0 n;
  A.blt_l p R.s6 R.t0 "lk";
  (* C[i*n + j] = acc *)
  A.li p R.t0 n;
  A.mul p R.t1 R.s4 R.t0;
  A.add p R.t1 R.t1 R.s5;
  A.slli p R.t1 R.t1 2;
  A.add p R.t1 R.s3 R.t1;
  A.sw p R.s7 R.t1 0;
  A.addi p R.s5 R.s5 1;
  A.li p R.t0 n;
  A.blt_l p R.s5 R.t0 "lj";
  A.addi p R.s4 R.s4 1;
  A.blt_l p R.s4 R.t0 "li";
  (* checksum *)
  A.la p R.t1 "mc";
  A.li p R.t2 (n * n);
  A.li p R.a0 0;
  A.label p "sum";
  A.lw p R.t3 R.t1 0;
  A.add p R.a0 R.a0 R.t3;
  A.addi p R.t1 R.t1 4;
  A.addi p R.t2 R.t2 (-1);
  A.bnez_l p R.t2 "sum";
  A.li p R.t0 checksum;
  A.bne_l p R.a0 R.t0 "fail";
  Rt.exit_ p ();
  A.label p "fail";
  Rt.exit_ p ~code:1 ();
  A.align p 4;
  A.label p "ma";
  Array.iter (fun v -> A.word p v) a;
  A.label p "mb";
  Array.iter (fun v -> A.word p v) b;
  A.label p "mc";
  A.space p (4 * n * n)

let matmul_image ?n () =
  let p = A.create () in
  matmul ?n p;
  A.assemble p

(* --- string routines ------------------------------------------------------- *)

let strings ?(count = 64) p =
  (* count strings of varying lengths; the firmware strcpy's each into a
     scratch buffer, strcmp's the copy against the original, and sums the
     strlen's. *)
  let strs =
    List.init count (fun i ->
        String.init ((i mod 29) + 1) (fun j ->
            Char.chr ((((i * 31) + (j * 7)) land 0x3f) + 0x20)))
  in
  let total_len = List.fold_left (fun a s -> a + String.length s) 0 strs in
  Rt.entry p ();
  A.la p R.s1 "table" (* array of string pointers *);
  A.li p R.s2 count;
  A.li p R.s3 0 (* length accumulator *);
  A.label p "each";
  A.lw p R.a1 R.s1 0 (* src *);
  (* strlen *)
  A.mv p R.t0 R.a1;
  A.label p "len";
  A.lbu p R.t1 R.t0 0;
  A.addi p R.t0 R.t0 1;
  A.bnez_l p R.t1 "len";
  A.addi p R.t0 R.t0 (-1);
  A.sub p R.t2 R.t0 R.a1;
  A.add p R.s3 R.s3 R.t2;
  (* strcpy into scratch *)
  A.la p R.a0 "scratch";
  A.call p "memcpy_z";
  (* strcmp copy vs original *)
  A.la p R.a0 "scratch";
  A.call p "strcmp";
  A.bnez_l p R.a0 "fail";
  A.addi p R.s1 R.s1 4;
  A.addi p R.s2 R.s2 (-1);
  A.bnez_l p R.s2 "each";
  A.li p R.t0 total_len;
  A.bne_l p R.s3 R.t0 "fail";
  Rt.exit_ p ();
  A.label p "fail";
  Rt.exit_ p ~code:1 ();
  (* memcpy_z: copy NUL-terminated a1 -> a0 (strcpy), preserves a1. *)
  A.label p "memcpy_z";
  A.mv p R.t0 R.a0;
  A.mv p R.t1 R.a1;
  A.label p "cz";
  A.lbu p R.t2 R.t1 0;
  A.sb p R.t2 R.t0 0;
  A.addi p R.t0 R.t0 1;
  A.addi p R.t1 R.t1 1;
  A.bnez_l p R.t2 "cz";
  A.ret p;
  Rt.emit_strcmp p;
  A.align p 4;
  A.label p "table";
  List.iteri (fun i _ -> A.word_l p (Printf.sprintf "str%d" i)) strs;
  List.iteri
    (fun i s ->
      A.label p (Printf.sprintf "str%d" i);
      A.asciz p s)
    strs;
  A.align p 4;
  A.label p "scratch";
  A.space p 64

let strings_image ?count () =
  let p = A.create () in
  strings ?count p;
  A.assemble p

(* --- indirect dispatch ------------------------------------------------------ *)

let dispatch_reference rounds =
  let acc = ref 0 in
  for k = 1 to rounds do
    (match k land 3 with
    | 0 -> acc := !acc + k
    | 1 -> acc := !acc lxor ((k lsl 1) land 0xffffffff)
    | 2 -> acc := !acc + (k lsl 1) + 1
    | _ -> acc := !acc - k);
    acc := !acc land 0xffffffff
  done;
  !acc

let dispatch ?(rounds = 4096) p =
  (* Branch-heavy engine stressor: a tight call/return pair (monomorphic
     [jalr] — the inline caches' best case) plus a table-driven indirect
     dispatch whose target rotates every iteration (polymorphic [jalr] —
     the sticky-demotion path). Every handler return site is monomorphic,
     so the workload exercises IC hits, IC misses and superblock chaining
     in one loop. The accumulator self-checks against a host-computed
     value. *)
  let expected = dispatch_reference rounds in
  Rt.entry p ();
  A.li p R.s1 rounds;
  A.li p R.s2 0 (* accumulator *);
  A.li p R.s3 0 (* iteration counter k *);
  A.label p "loop";
  A.call p "work";
  (* handler = table[k land 3] *)
  A.andi p R.t0 R.s3 3;
  A.slli p R.t0 R.t0 2;
  A.la p R.t1 "table";
  A.add p R.t0 R.t0 R.t1;
  A.lw p R.t1 R.t0 0;
  A.jalr p R.ra R.t1 0;
  A.addi p R.s1 R.s1 (-1);
  A.bnez_l p R.s1 "loop";
  A.li p R.t0 expected;
  A.bne_l p R.s2 R.t0 "fail";
  Rt.exit_ p ();
  A.label p "fail";
  Rt.exit_ p ~code:1 ();
  A.label p "work";
  A.addi p R.s3 R.s3 1;
  A.ret p;
  A.label p "h0";
  A.add p R.s2 R.s2 R.s3;
  A.ret p;
  A.label p "h1";
  A.slli p R.t2 R.s3 1;
  A.xor p R.s2 R.s2 R.t2;
  A.ret p;
  A.label p "h2";
  A.slli p R.t2 R.s3 1;
  A.add p R.s2 R.s2 R.t2;
  A.addi p R.s2 R.s2 1;
  A.ret p;
  A.label p "h3";
  A.sub p R.s2 R.s2 R.s3;
  A.ret p;
  A.align p 4;
  A.label p "table";
  A.word_l p "h0";
  A.word_l p "h1";
  A.word_l p "h2";
  A.word_l p "h3"

let dispatch_image ?rounds () =
  let p = A.create () in
  dispatch ?rounds p;
  A.assemble p
