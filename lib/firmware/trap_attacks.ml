module A = Rv32_asm.Asm
module R = Rv32.Reg

type scenario = Mtvec_hijack | Irq_leak
type outcome = Detected | Missed of int

let scenarios = [ Mtvec_hijack; Irq_leak ]
let name = function Mtvec_hijack -> "mtvec-hijack" | Irq_leak -> "irq-leak"

let describe = function
  | Mtvec_hijack ->
      "trap-handler hijack: attacker-supplied bytes reach a csrw mtvec"
  | Irq_leak ->
      "interrupt-driven leak: an ISR on an unclaimed PLIC source drains a \
       classified sensor frame to the UART"

let exit_code = 99
let leak_bytes = 16

(* --- mtvec hijack -------------------------------------------------------

   The firmware models a "flexible vector table": it installs a legitimate
   trap handler, then accepts a 4-byte little-endian word from the UART as
   an updated vector base and writes it to mtvec unvalidated. The
   attacker supplies the address of [gadget], so the very next service
   ecall runs attacker-chosen code in machine mode. The trap-steering
   clearance (policy [trap_csr]) catches the csrw itself: the word is
   UART-derived (LI) and may not choose where a machine-mode handler
   runs. *)

let build_hijack p =
  Rt.entry p ();
  Rt.setup_trap_handler p "handler";
  (* Read 4 bytes from the UART into t0 (LSB first). *)
  A.li p R.t1 Vp.Soc.uart_base;
  A.li p R.t0 0;
  A.li p R.t4 0;
  A.label p "rd.loop";
  A.lbu p R.t2 R.t1 8;
  A.andi p R.t2 R.t2 1;
  A.beqz_l p R.t2 "rd.loop";
  A.lbu p R.t3 R.t1 4;
  A.sll p R.t3 R.t3 R.t4;
  A.or_ p R.t0 R.t0 R.t3;
  A.addi p R.t4 R.t4 8;
  A.li p R.t2 32;
  A.bne_l p R.t4 R.t2 "rd.loop";
  (* The vulnerability: the attacker-controlled word becomes the trap
     vector. *)
  A.csrrw p R.zero Rv32.Csr.mtvec R.t0;
  (* Any subsequent service call now dispatches through the hijacked
     vector. *)
  A.li p R.a7 0;
  A.ecall p;
  Rt.exit_ p ~code:0 ();
  (* The legitimate handler: skip the trapping instruction. *)
  A.align p 4;
  A.label p "handler";
  A.csrrs p R.t6 Rv32.Csr.mepc 0;
  A.addi p R.t6 R.t6 4;
  A.csrrw p R.zero Rv32.Csr.mepc R.t6;
  A.mret p;
  (* The attacker's destination: observable effect ('P' on the UART) and
     a distinctive exit code. *)
  A.align p 4;
  A.label p "gadget";
  A.li p R.t0 Vp.Soc.uart_base;
  A.li p R.t1 (Char.code 'P');
  A.sb p R.t1 R.t0 0;
  Rt.exit_ p ~code:exit_code ();
  A.label p "gadget_end";
  A.nop p

let hijack_payload img =
  let a = Rv32_asm.Image.symbol img "gadget" in
  String.init 4 (fun i -> Char.chr ((a lsr (8 * i)) land 0xff))

let hijack_policy img =
  let lat = Dift.Lattice.integrity () in
  let hi = Dift.Lattice.tag_of_name lat "HI" in
  let li = Dift.Lattice.tag_of_name lat "LI" in
  Dift.Policy.make ~lattice:lat ~default_tag:li
    ~classification:
      [
        Dift.Policy.region ~name:"program" ~lo:img.Rv32_asm.Image.org
          ~hi:(Rv32_asm.Image.limit img - 1)
          ~tag:hi;
      ]
    ~trap_csr:hi ()

(* --- interrupt-driven leak ----------------------------------------------

   The firmware enables the sensor's PLIC source and idles in wfi. Its
   ISR is buggy twice over: it copies classified sensor bytes straight to
   the UART, and it never claims the interrupt — so the still-pending
   source re-enters the ISR immediately after every mret, draining the
   frame one byte per spurious interrupt without the main loop ever
   running. The output clearance on the UART catches the first byte. *)

let build_leak p =
  A.j p "_start";
  A.align p 4;
  A.label p "isr";
  (* No claim: the PLIC source stays pending across the mret. *)
  A.la p R.t0 "nleaked";
  A.lw p R.t1 R.t0 0;
  A.li p R.t2 Vp.Soc.sensor_base;
  A.add p R.t2 R.t2 R.t1;
  A.lbu p R.t3 R.t2 0;
  A.li p R.t4 Vp.Soc.uart_base;
  A.sb p R.t3 R.t4 0;
  A.addi p R.t1 R.t1 1;
  A.sw p R.t1 R.t0 0;
  A.li p R.t2 leak_bytes;
  A.blt_l p R.t1 R.t2 "isr.done";
  Rt.exit_ p ~code:exit_code ();
  A.label p "isr.done";
  A.mret p;
  Rt.entry p ();
  Rt.setup_trap_handler p "isr";
  A.li p R.t0 (Vp.Soc.plic_base + 4);
  A.li p R.t1 (1 lsl Vp.Soc.irq_sensor);
  A.sw p R.t1 R.t0 0;
  Rt.enable_machine_interrupts p ~mie_bits:Rv32.Csr.bit_mei;
  A.label p "idle";
  A.wfi p;
  A.j p "idle";
  A.align p 4;
  A.label p "nleaked";
  A.word p 0

let leak_policy () =
  let lat = Dift.Lattice.confidentiality () in
  let lc = Dift.Lattice.tag_of_name lat "LC" in
  Dift.Policy.make ~lattice:lat ~default_tag:lc
    ~output_clearance:[ ("uart", lc) ] ()

(* --- assembly / execution ------------------------------------------------ *)

let image scenario =
  let p = A.create () in
  (match scenario with
  | Mtvec_hijack -> build_hijack p
  | Irq_leak -> build_leak p);
  A.assemble p

let policy scenario img =
  match scenario with
  | Mtvec_hijack -> hijack_policy img
  | Irq_leak -> leak_policy ()

let payload scenario img =
  match scenario with
  | Mtvec_hijack -> Some (hijack_payload img)
  | Irq_leak -> None

let sensor_period = Sysc.Time.us 10

let run ?(tracking = true) ?tracer scenario =
  let img = image scenario in
  let pol = policy scenario img in
  let monitor = Dift.Monitor.create pol.Dift.Policy.lattice in
  let soc =
    Vp.Soc.create ~policy:pol ~monitor ~tracking ~sensor_period ?tracer ()
  in
  (match scenario with
  | Irq_leak ->
      Vp.Sensor.set_data_tag soc.Vp.Soc.sensor
        (Dift.Lattice.tag_of_name pol.Dift.Policy.lattice "HC")
  | Mtvec_hijack -> ());
  Vp.Soc.load_image soc img;
  (match payload scenario img with
  | Some bytes -> Vp.Uart.push_rx soc.Vp.Soc.uart bytes
  | None -> ());
  soc.Vp.Soc.cpu.Vp.Soc.cpu_set_max 1_000_000;
  Vp.Soc.start soc;
  match Vp.Soc.run soc with
  | exception Dift.Violation.Violation _ -> Detected
  | () -> (
      match soc.Vp.Soc.cpu.Vp.Soc.cpu_exit () with
      | Rv32.Core.Exited code -> Missed code
      | Rv32.Core.Running | Rv32.Core.Breakpoint | Rv32.Core.Insn_limit ->
          Missed (-1))
