(** Trap-driven attack scenarios for the privilege architecture: two
    end-to-end case studies where the attack travels through the
    machine-trap machinery itself, and detection needs the
    privilege-boundary DIFT policies rather than a memory clearance.

    - {!Mtvec_hijack}: the firmware accepts an attacker-supplied word
      from the UART and installs it as the trap vector (a "flexible
      vector table update"). The next service ecall then runs the
      attacker's gadget in machine mode. The trap-steering clearance
      ({!Dift.Policy.t.trap_csr}) detects the tainted [csrw mtvec] at
      the write, before any trap is taken.
    - {!Irq_leak}: a doubly buggy ISR on the sensor's PLIC source copies
      classified frame bytes to the UART and never claims the interrupt,
      so the still-pending source re-enters the ISR after every mret and
      drains the frame without the main loop running. The UART output
      clearance detects the first classified byte.

    Both attacks genuinely land on the untracked VP (exit code
    {!exit_code}), proving the detections are not vacuous — same
    structure as the {!Wilander} suite. *)

type scenario = Mtvec_hijack | Irq_leak

type outcome =
  | Detected  (** The DIFT engine raised a violation. *)
  | Missed of int  (** The program ran to completion with this exit code. *)

val scenarios : scenario list
val name : scenario -> string
val describe : scenario -> string

val exit_code : int
(** Exit code of a successful (undetected) attack: 99. *)

val leak_bytes : int
(** Sensor bytes the {!Irq_leak} ISR drains before exiting (16). *)

val image : scenario -> Rv32_asm.Image.t

val policy : scenario -> Rv32_asm.Image.t -> Dift.Policy.t
(** {!Mtvec_hijack}: integrity lattice, program classified HI, UART input
    LI, [trap_csr] clearance HI. {!Irq_leak}: confidentiality lattice,
    everything LC except the sensor data (classified HC host-side by
    {!run}), UART output clearance LC. *)

val payload : scenario -> Rv32_asm.Image.t -> string option
(** The attacker's UART input: for {!Mtvec_hijack} the little-endian
    address of the gadget; [None] for {!Irq_leak} (the "input" is the
    sensor frame). *)

val run : ?tracking:bool -> ?tracer:Trace.Tracer.t -> scenario -> outcome
(** Execute the scenario on a fresh SoC (VP+ by default; [tracking:false]
    shows the attack landing). [tracer] must be built over a lattice
    structurally identical to {!policy}'s. *)
