module A = Rv32_asm.Asm
module R = Rv32.Reg

type outcome = Detected | Missed of int | Not_applicable

type attack = {
  id : int;
  location : string;
  target : string;
  technique : string;
  applicable : bool;
  na_reason : string;
}

let reg_param = "the RISC-V calling convention passes this parameter in a register"
let reg_fp = "the RISC-V ABI keeps the frame pointer in a register here"
let layout = "the RISC-V port's segment layout places the target before the buffer"

let attacks =
  [
    { id = 1; location = "Stack"; target = "Function Pointer (param)";
      technique = "Direct"; applicable = false; na_reason = reg_param };
    { id = 2; location = "Stack"; target = "Longjmp Buffer (param)";
      technique = "Direct"; applicable = false; na_reason = reg_param };
    { id = 3; location = "Stack"; target = "Return Address";
      technique = "Direct"; applicable = true; na_reason = "" };
    { id = 4; location = "Stack"; target = "Base Pointer";
      technique = "Direct"; applicable = false; na_reason = reg_fp };
    { id = 5; location = "Stack"; target = "Function Pointer (local)";
      technique = "Direct"; applicable = true; na_reason = "" };
    { id = 6; location = "Stack"; target = "Longjmp Buffer";
      technique = "Direct"; applicable = true; na_reason = "" };
    { id = 7; location = "Heap/BSS/Data"; target = "Function Pointer";
      technique = "Direct"; applicable = true; na_reason = "" };
    { id = 8; location = "Heap/BSS/Data"; target = "Longjmp Buffer";
      technique = "Direct"; applicable = false; na_reason = layout };
    { id = 9; location = "Stack"; target = "Function Pointer (param)";
      technique = "Indirect"; applicable = true; na_reason = "" };
    { id = 10; location = "Stack"; target = "Longjump Buffer (param)";
      technique = "Indirect"; applicable = true; na_reason = "" };
    { id = 11; location = "Stack"; target = "Return Address";
      technique = "Indirect"; applicable = true; na_reason = "" };
    { id = 12; location = "Stack"; target = "Base Pointer";
      technique = "Indirect"; applicable = false; na_reason = reg_fp };
    { id = 13; location = "Stack"; target = "Function Pointer (local)";
      technique = "Indirect"; applicable = true; na_reason = "" };
    { id = 14; location = "Stack"; target = "Longjmp Buffer";
      technique = "Indirect"; applicable = true; na_reason = "" };
    { id = 15; location = "Heap/BSS/Data"; target = "Return Address";
      technique = "Indirect"; applicable = false; na_reason = layout };
    { id = 16; location = "Heap/BSS/Data"; target = "Base Pointer";
      technique = "Indirect"; applicable = false; na_reason = reg_fp };
    { id = 17; location = "Heap/BSS/Data"; target = "Function Pointer (local)";
      technique = "Indirect"; applicable = true; na_reason = "" };
    { id = 18; location = "Heap/BSS/Data"; target = "Longjmp Buffer";
      technique = "Indirect"; applicable = false; na_reason = layout };
  ]

let expected_detected = [ 3; 5; 6; 7; 9; 10; 11; 13; 14; 17 ]

let st = Rt.stack_top

(* --- shared emission helpers -------------------------------------------- *)

(* copy_input: drain all pending UART bytes to the address in a0 — the
   unbounded strcpy-style vulnerability. *)
let emit_copy_input p =
  A.label p "copy_input";
  A.li p R.t1 Vp.Soc.uart_base;
  A.label p "ci.loop";
  A.lbu p R.t2 R.t1 8;
  A.andi p R.t2 R.t2 1;
  A.beqz_l p R.t2 "ci.done";
  A.lbu p R.t3 R.t1 4;
  A.sb p R.t3 R.a0 0;
  A.addi p R.a0 R.a0 1;
  A.j p "ci.loop";
  A.label p "ci.done";
  A.ret p

(* The injected payload: prints 'P' and exits 7. Classified LI by the
   policy (standing in for code that arrived from outside). *)
let emit_attack_code p =
  A.align p 4;
  A.label p "attack_code";
  A.li p R.t0 Vp.Soc.uart_base;
  A.li p R.t1 (Char.code 'P');
  A.sb p R.t1 R.t0 0;
  Rt.exit_ p ~code:7 ();
  A.label p "attack_code_end";
  A.nop p

let emit_benign p =
  A.label p "benign";
  A.ret p

(* Minimal setjmp/longjmp: the jump buffer holds { ra; sp }. *)
let emit_setjmp_longjmp p =
  A.label p "setjmp";
  A.sw p R.ra R.a0 0;
  A.sw p R.sp R.a0 4;
  A.li p R.a0 0;
  A.ret p;
  A.label p "longjmp";
  A.lw p R.t0 R.a0 0;
  A.lw p R.sp R.a0 4;
  A.mv p R.a0 R.a1;
  A.jalr p R.zero R.t0 0

let addr_le a =
  String.init 4 (fun i -> Char.chr ((a lsr (8 * i)) land 0xff))

let filler n = String.make n 'A'

(* --- the ten applicable attack programs --------------------------------- *)

(* 3: stack / return address / direct.
   vuln frame (32 bytes, sp = st-32): buffer at 0, saved ra at 28. *)
let build_3 p =
  Rt.entry p ();
  A.call p "vuln";
  Rt.exit_ p ();
  A.label p "vuln";
  A.addi p R.sp R.sp (-32);
  A.sw p R.ra R.sp 28;
  A.mv p R.a0 R.sp;
  A.call p "copy_input";
  A.lw p R.ra R.sp 28;
  A.addi p R.sp R.sp 32;
  A.ret p;
  emit_copy_input p;
  emit_attack_code p

let payload_3 img = filler 28 ^ addr_le (Rv32_asm.Image.symbol img "attack_code")

(* 5: stack / local function pointer / direct.
   vuln frame (32): buffer 0..15, fnptr at 16, ra at 28. *)
let build_5 p =
  Rt.entry p ();
  A.call p "vuln";
  Rt.exit_ p ();
  A.label p "vuln";
  A.addi p R.sp R.sp (-32);
  A.sw p R.ra R.sp 28;
  A.la p R.t0 "benign";
  A.sw p R.t0 R.sp 16;
  A.mv p R.a0 R.sp;
  A.call p "copy_input";
  A.lw p R.t0 R.sp 16;
  A.jalr p R.ra R.t0 0;
  A.lw p R.ra R.sp 28;
  A.addi p R.sp R.sp 32;
  A.ret p;
  emit_copy_input p;
  emit_attack_code p;
  emit_benign p

let payload_5 img = filler 16 ^ addr_le (Rv32_asm.Image.symbol img "attack_code")

(* 6: stack / longjmp buffer / direct.
   vuln frame (48): buffer 0..15, jmp_buf at 16..23, ra at 44. *)
let build_6 p =
  Rt.entry p ();
  A.call p "vuln";
  Rt.exit_ p ();
  A.label p "vuln";
  A.addi p R.sp R.sp (-48);
  A.sw p R.ra R.sp 44;
  A.addi p R.a0 R.sp 16;
  A.call p "setjmp";
  A.bnez_l p R.a0 "vuln.out";
  A.mv p R.a0 R.sp;
  A.call p "copy_input";
  A.addi p R.a0 R.sp 16;
  A.li p R.a1 1;
  A.call p "longjmp";
  A.label p "vuln.out";
  A.lw p R.ra R.sp 44;
  A.addi p R.sp R.sp 48;
  A.ret p;
  emit_copy_input p;
  emit_attack_code p;
  emit_setjmp_longjmp p

let payload_6 img = filler 16 ^ addr_le (Rv32_asm.Image.symbol img "attack_code")

(* 7: BSS / function pointer / direct: static buffer adjacent to a static
   function pointer. *)
let build_7 p =
  Rt.entry p ();
  A.la p R.t0 "benign";
  A.la p R.t1 "gfnptr";
  A.sw p R.t0 R.t1 0;
  A.la p R.a0 "gbuf";
  A.call p "copy_input";
  A.la p R.t1 "gfnptr";
  A.lw p R.t0 R.t1 0;
  A.jalr p R.ra R.t0 0;
  Rt.exit_ p ();
  emit_copy_input p;
  emit_attack_code p;
  emit_benign p;
  A.align p 4;
  A.label p "gbuf";
  A.space p 16;
  A.label p "gfnptr";
  A.word p 0

let payload_7 img = filler 16 ^ addr_le (Rv32_asm.Image.symbol img "attack_code")

(* Indirect skeleton: vuln's frame holds buffer 0..15, a data pointer at
   16 and a value slot at 20; the overflow rewrites both, then the program
   performs [* ptr = value] — an arbitrary-write primitive. *)
let emit_vuln_indirect p ~frame ~after_write =
  A.label p "vuln";
  A.addi p R.sp R.sp (-frame);
  A.sw p R.ra R.sp (frame - 4);
  A.la p R.t0 "scratch";
  A.sw p R.t0 R.sp 16 (* benign initial pointer *);
  A.mv p R.a0 R.sp;
  A.call p "copy_input";
  A.lw p R.t0 R.sp 16;
  A.lw p R.t1 R.sp 20;
  A.sw p R.t1 R.t0 0 (* the indirect write *);
  after_write ();
  A.lw p R.ra R.sp (frame - 4);
  A.addi p R.sp R.sp frame;
  A.ret p

let indirect_payload ~target_addr img =
  filler 16 ^ addr_le target_addr
  ^ addr_le (Rv32_asm.Image.symbol img "attack_code")

(* 9: stack / function pointer (param) / indirect: main's local fnptr
   (passed by reference) is the write target.
   main frame (16, sp = st-16): fnptr at 12 => address st-4.
   vuln frame 32 below it. *)
let build_9 p =
  Rt.entry p ();
  A.addi p R.sp R.sp (-16);
  A.la p R.t0 "benign";
  A.sw p R.t0 R.sp 12;
  A.addi p R.a0 R.sp 12 (* &fnptr parameter *);
  A.call p "vuln";
  A.lw p R.t0 R.sp 12;
  A.jalr p R.ra R.t0 0;
  A.addi p R.sp R.sp 16;
  Rt.exit_ p ();
  emit_vuln_indirect p ~frame:32 ~after_write:(fun () -> ());
  emit_copy_input p;
  emit_attack_code p;
  emit_benign p;
  A.align p 4;
  A.label p "scratch";
  A.word p 0

let payload_9 = indirect_payload ~target_addr:(st - 4)

(* 10: stack / longjmp buffer (param) / indirect: main's jmp_buf at
   st-8..st-1, passed to vuln; the write corrupts jb.ra. *)
let build_10 p =
  Rt.entry p ();
  A.addi p R.sp R.sp (-16);
  A.addi p R.a0 R.sp 8;
  A.call p "setjmp";
  A.bnez_l p R.a0 "out";
  A.addi p R.a0 R.sp 8 (* &jb parameter *);
  A.call p "vuln";
  A.addi p R.a0 R.sp 8;
  A.li p R.a1 1;
  A.call p "longjmp";
  A.label p "out";
  A.addi p R.sp R.sp 16;
  Rt.exit_ p ();
  emit_vuln_indirect p ~frame:32 ~after_write:(fun () -> ());
  emit_copy_input p;
  emit_attack_code p;
  emit_setjmp_longjmp p;
  A.align p 4;
  A.label p "scratch";
  A.word p 0

let payload_10 = indirect_payload ~target_addr:(st - 8)

(* 11: stack / return address / indirect: the write targets vuln's own
   saved-ra slot (frame 32 at st-32, slot at st-4; main is frameless). *)
let build_11 p =
  Rt.entry p ();
  A.call p "vuln";
  Rt.exit_ p ();
  emit_vuln_indirect p ~frame:32 ~after_write:(fun () -> ());
  emit_copy_input p;
  emit_attack_code p;
  A.align p 4;
  A.label p "scratch";
  A.word p 0

let payload_11 = indirect_payload ~target_addr:(st - 4)

(* 13: stack / local function pointer / indirect: vuln frame 48 holds a
   local fnptr at 24 (address st-48+24 = st-24); call it after the write. *)
let build_13 p =
  Rt.entry p ();
  A.call p "vuln";
  Rt.exit_ p ();
  A.label p "vuln";
  A.addi p R.sp R.sp (-48);
  A.sw p R.ra R.sp 44;
  A.la p R.t0 "scratch";
  A.sw p R.t0 R.sp 16;
  A.la p R.t0 "benign";
  A.sw p R.t0 R.sp 24;
  A.mv p R.a0 R.sp;
  A.call p "copy_input";
  A.lw p R.t0 R.sp 16;
  A.lw p R.t1 R.sp 20;
  A.sw p R.t1 R.t0 0;
  A.lw p R.t0 R.sp 24;
  A.jalr p R.ra R.t0 0;
  A.lw p R.ra R.sp 44;
  A.addi p R.sp R.sp 48;
  A.ret p;
  emit_copy_input p;
  emit_attack_code p;
  emit_benign p;
  A.align p 4;
  A.label p "scratch";
  A.word p 0

let payload_13 = indirect_payload ~target_addr:(st - 24)

(* 14: stack / longjmp buffer / indirect: vuln frame 48 holds a jmp_buf at
   24..31 (jb.ra at st-24); longjmp after the write. *)
let build_14 p =
  Rt.entry p ();
  A.call p "vuln";
  Rt.exit_ p ();
  A.label p "vuln";
  A.addi p R.sp R.sp (-48);
  A.sw p R.ra R.sp 44;
  A.addi p R.a0 R.sp 24;
  A.call p "setjmp";
  A.bnez_l p R.a0 "vuln.out";
  A.la p R.t0 "scratch";
  A.sw p R.t0 R.sp 16;
  A.mv p R.a0 R.sp;
  A.call p "copy_input";
  A.lw p R.t0 R.sp 16;
  A.lw p R.t1 R.sp 20;
  A.sw p R.t1 R.t0 0;
  A.addi p R.a0 R.sp 24;
  A.li p R.a1 1;
  A.call p "longjmp";
  A.label p "vuln.out";
  A.lw p R.ra R.sp 44;
  A.addi p R.sp R.sp 48;
  A.ret p;
  emit_copy_input p;
  emit_attack_code p;
  emit_setjmp_longjmp p;
  A.align p 4;
  A.label p "scratch";
  A.word p 0

let payload_14 = indirect_payload ~target_addr:(st - 24)

(* 17: BSS / function pointer / indirect: the overflow rewrites a static
   pointer + value; the write targets a static fnptr elsewhere. *)
let build_17 p =
  Rt.entry p ();
  A.la p R.t0 "benign";
  A.la p R.t1 "gfnptr";
  A.sw p R.t0 R.t1 0;
  A.la p R.t0 "scratch";
  A.la p R.t1 "gptr";
  A.sw p R.t0 R.t1 0;
  A.la p R.a0 "gbuf";
  A.call p "copy_input";
  A.la p R.t2 "gptr";
  A.lw p R.t0 R.t2 0;
  A.lw p R.t1 R.t2 4 (* gval *);
  A.sw p R.t1 R.t0 0;
  A.la p R.t1 "gfnptr";
  A.lw p R.t0 R.t1 0;
  A.jalr p R.ra R.t0 0;
  Rt.exit_ p ();
  emit_copy_input p;
  emit_attack_code p;
  emit_benign p;
  A.align p 4;
  A.label p "gbuf";
  A.space p 16;
  A.label p "gptr";
  A.word p 0;
  A.label p "gval";
  A.word p 0;
  A.label p "gfnptr";
  A.word p 0;
  A.label p "scratch";
  A.word p 0

let payload_17 img =
  indirect_payload ~target_addr:(Rv32_asm.Image.symbol img "gfnptr") img

(* --- assembly / policy / execution --------------------------------------- *)

let builders =
  [ (3, build_3); (5, build_5); (6, build_6); (7, build_7); (9, build_9);
    (10, build_10); (11, build_11); (13, build_13); (14, build_14);
    (17, build_17) ]

let image_for id =
  match List.assoc_opt id builders with
  | None -> None
  | Some build ->
      let p = A.create () in
      build p;
      Some (A.assemble p)

let payload_for id img =
  match id with
  | 3 -> payload_3 img
  | 5 -> payload_5 img
  | 6 -> payload_6 img
  | 7 -> payload_7 img
  | 9 -> payload_9 img
  | 10 -> payload_10 img
  | 11 -> payload_11 img
  | 13 -> payload_13 img
  | 14 -> payload_14 img
  | 17 -> payload_17 img
  | _ -> invalid_arg "Wilander.payload_for: attack not applicable"

(* Section VI-B's code-injection policy: program HI, fetch clearance HI,
   external input LI, the payload function classified LI. *)
let policy img =
  let lat = Dift.Lattice.integrity () in
  let hi = Dift.Lattice.tag_of_name lat "HI" in
  let li = Dift.Lattice.tag_of_name lat "LI" in
  Dift.Policy.make ~lattice:lat ~default_tag:li
    ~classification:
      [
        Dift.Policy.region ~name:"attack-code"
          ~lo:(Rv32_asm.Image.symbol img "attack_code")
          ~hi:(Rv32_asm.Image.symbol img "attack_code_end" - 1)
          ~tag:li;
        Dift.Policy.region ~name:"program" ~lo:img.Rv32_asm.Image.org
          ~hi:(Rv32_asm.Image.limit img - 1)
          ~tag:hi;
      ]
    ~exec_fetch:hi ()

let run ?(tracking = true) ?tracer id =
  match image_for id with
  | None -> Not_applicable
  | Some img -> (
      let pol = policy img in
      let monitor = Dift.Monitor.create pol.Dift.Policy.lattice in
      let soc = Vp.Soc.create ~policy:pol ~monitor ~tracking ?tracer () in
      Vp.Soc.load_image soc img;
      Vp.Uart.push_rx soc.Vp.Soc.uart (payload_for id img);
      soc.Vp.Soc.cpu.Vp.Soc.cpu_set_max 1_000_000;
      Vp.Soc.start soc;
      match Vp.Soc.run soc with
      | exception Dift.Violation.Violation _ -> Detected
      | () -> (
          match soc.Vp.Soc.cpu.Vp.Soc.cpu_exit () with
          | Rv32.Core.Exited code -> Missed code
          | Rv32.Core.Running | Rv32.Core.Breakpoint | Rv32.Core.Insn_limit ->
              Missed (-1)))
