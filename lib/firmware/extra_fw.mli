(** Small self-checking workloads: the paper's hello-world plus extras
    beyond the Table II set, used by the benchmark series and as further
    ISS coverage:

    - {!hello}: the Table II hello-world — print the greeting over the
      UART [rounds] times, char-summing the message as a self-check (the
      perf-smoke CI workload);
    - {!crc32}: table-less (bitwise) CRC-32 over a generated buffer,
      checked against the host reference {!crc32_reference};
    - {!matmul}: integer matrix multiply C = A x B with a checksum over C;
    - {!strings}: a strlen/strcpy/strcmp workout over many generated
      strings (pointer-chasing heavy);
    - {!dispatch}: a branch-heavy control-flow stressor — a tight
      call/return pair plus a table-driven indirect dispatch whose
      [jalr] target rotates every iteration (the superblock engine's
      inline-cache hit, miss and demotion paths all fire).

    All exit 0 on success, 1 on a self-check mismatch. *)

val hello : ?rounds:int -> Rv32_asm.Asm.t -> unit
val hello_image : ?rounds:int -> unit -> Rv32_asm.Image.t

val crc32 : ?len:int -> Rv32_asm.Asm.t -> unit
val crc32_image : ?len:int -> unit -> Rv32_asm.Image.t

val crc32_reference : string -> int
(** Standard CRC-32 (IEEE 802.3, reflected, init/xorout 0xffffffff). *)

val matmul : ?n:int -> Rv32_asm.Asm.t -> unit
val matmul_image : ?n:int -> unit -> Rv32_asm.Image.t

val strings : ?count:int -> Rv32_asm.Asm.t -> unit
val strings_image : ?count:int -> unit -> Rv32_asm.Image.t

val dispatch : ?rounds:int -> Rv32_asm.Asm.t -> unit
val dispatch_image : ?rounds:int -> unit -> Rv32_asm.Image.t

val dispatch_reference : int -> int
(** Host model of {!dispatch}'s accumulator after [rounds] iterations. *)
