type 'a t = {
  q : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create () =
  {
    q = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let send t v =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Chan.send: closed channel"
  end;
  Queue.push v t.q;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let recv t =
  Mutex.lock t.mutex;
  let rec take () =
    match Queue.take_opt t.q with
    | Some v -> Some v
    | None ->
        if t.closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          take ()
        end
  in
  let r = take () in
  Mutex.unlock t.mutex;
  r

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex
