type shard = { index : int; start : int; length : int; seed : int }

(* splitmix64's finalizer on OCaml's 63-bit ints: good avalanche, so
   consecutive shard indices yield unrelated 32-bit seeds. *)
let splitmix64 x =
  let ( *% ) a b = a * b land max_int in
  let x = x + 0x61c88646_80b583eb (* 2^64 * phi, truncated to 63 bit *) in
  let x = (x lxor (x lsr 30)) *% 0x3f4f95e4_814b0cd5 in
  let x = (x lxor (x lsr 27)) *% 0x4cd6944c_5cc343ab in
  x lxor (x lsr 31)

let derive_seed ~seed ~shard =
  if shard = 0 then seed
  else
    let s = splitmix64 (splitmix64 seed lxor (shard * 0x9e3779b9)) land 0xffffffff in
    if s = 0 then 1 else s

let shards ~seed ~total ~shard_size =
  if shard_size <= 0 then invalid_arg "Campaign.shards: shard_size must be positive";
  if total <= 0 then [||]
  else
    let n = (total + shard_size - 1) / shard_size in
    Array.init n (fun i ->
        let start = i * shard_size in
        {
          index = i;
          start;
          length = min shard_size (total - start);
          seed = derive_seed ~seed ~shard:i;
        })
