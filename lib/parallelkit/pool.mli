(** A fixed-size [Domain]-based worker pool with work stealing.

    [map ~jobs f tasks] applies [f] to every element of [tasks] and
    returns the results {e in task order}, regardless of which worker ran
    which task — the building block of deterministic parallel campaigns.

    - [jobs <= 1] takes the exact sequential code path: a plain in-order
      map on the calling domain, no domains spawned, no channels, no
      synchronisation. A [--jobs 1] campaign is therefore bit-for-bit
      the sequential program.
    - [jobs > 1] spawns [min jobs (Array.length tasks)] worker domains.
      Task indices are distributed round-robin across per-worker
      {!Deque}s before the workers start; each worker drains its own
      deque from the front and, when empty, {e steals} from the other
      workers' backs — so a worker that drew short tasks rebalances the
      long tail instead of idling. Results land in a slot array keyed by
      index, so neither completion order nor steal pattern can reorder
      them: the merged output is byte-identical at any [jobs].

    Exception safety: a task that raises does not tear down the pool
    mid-flight. Every worker runs to completion, all domains are joined,
    and only then is the {e first} exception (in task order) re-raised on
    the caller — with its original backtrace. If the pool itself fails —
    [Domain.spawn] raising mid-spawn, or [on_done] raising on the caller
    — the already-spawned workers are stopped at their next task
    boundary and joined before the original exception propagates: no
    detached domains, no leaked channels, no hang. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default for [--jobs]
    flags. *)

type stats = {
  workers : int;  (** Domains actually spawned (1 on the sequential path). *)
  steals : int;  (** Tasks taken from another worker's deque. *)
  tasks_per_worker : int array;
      (** Tasks each worker executed; sums to the task count. *)
}

val map : ?on_done:(int -> 'b -> unit) -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** See above. [jobs] values above the task count are clamped.

    [on_done i v] is invoked once per {e successful} task, on the
    calling domain, as completions arrive (so in nondeterministic order
    when [jobs > 1], ascending order when sequential). It may freely
    touch caller-side state — the campaign checkpoint writer hangs off
    this hook. A raise from [on_done] aborts the pool cleanly (workers
    stopped and joined) and propagates. *)

val map_stats :
  ?on_done:(int -> 'b -> unit) -> jobs:int -> ('a -> 'b) -> 'a array ->
  'b array * stats
(** [map] plus scheduler observability — the bench reports steal counts
    and per-worker task splits from here. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map] on lists (order preserved). *)
