(** A fixed-size [Domain]-based worker pool.

    [map ~jobs f tasks] applies [f] to every element of [tasks] and
    returns the results {e in task order}, regardless of which worker ran
    which task — the building block of deterministic parallel campaigns.

    - [jobs <= 1] takes the exact sequential code path: a plain in-order
      [Array.map] on the calling domain, no domains spawned, no channels,
      no synchronisation. A [--jobs 1] campaign is therefore bit-for-bit
      the sequential program.
    - [jobs > 1] spawns [min jobs (Array.length tasks)] worker domains fed
      from a {!Chan} of task indices. Results land in a slot array keyed
      by index, so completion order cannot reorder them.

    Exception safety: a task that raises does not tear down the pool
    mid-flight. Every worker drains the channel to the end, all domains
    are joined, and only then is the {e first} exception (in task order)
    re-raised on the caller — with its original backtrace. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default for [--jobs]
    flags. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** See above. [jobs] values above the task count are clamped. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map] on lists (order preserved). *)
