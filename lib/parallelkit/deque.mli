(** A mutex-protected double-ended work queue — one per pool worker.

    The owner takes from the {e front} ([pop_front]), so it processes its
    share in the order it was enqueued (ascending shard index under the
    pool's round-robin distribution); thieves take from the {e back}
    ([steal]), so a steal grabs the work the owner would reach last. The
    two ends only meet when one element is left, and the mutex arbitrates
    that case.

    Shards are coarse (tens of oracle runs each), so a plain mutex is
    the right price point — there is no lock-free cleverness to audit,
    and the lock is taken once per {e shard}, not per program. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Append at the back. The pool only pushes during initial distribution
    (before workers spawn), but [push] is safe from any domain. *)

val pop_front : 'a t -> 'a option
(** Take the oldest element — the owner's end. [None] when empty. *)

val steal : 'a t -> 'a option
(** Take the newest element — the thief's end. [None] when empty. *)

val length : 'a t -> int
(** Number of elements currently queued (racy under concurrency; exact
    when quiescent). *)
