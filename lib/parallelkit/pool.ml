let default_jobs () = Domain.recommended_domain_count ()

(* One task's result: the value, or the exception it raised (with the
   backtrace captured in the worker, so the re-raise on the caller still
   points at the real failure site). *)
type 'b slot =
  | Empty
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

type stats = {
  workers : int;
  steals : int;
  tasks_per_worker : int array;
}

let sequential_stats n = { workers = 1; steals = 0; tasks_per_worker = [| n |] }

let run_task f x =
  match f x with
  | v -> Done v
  | exception e -> Raised (e, Printexc.get_raw_backtrace ())

let finish results =
  (* First failure in task order wins; a deterministic campaign therefore
     reports the same error whether it ran on 1 or N domains. *)
  Array.iter
    (function
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
      | Empty | Done _ -> ())
    results;
  Array.map
    (function
      | Done v -> v
      | Empty | Raised _ ->
          (* Only reachable when the pool aborted early (a spawn failure
             or an [on_done] raise) — and then the exception that caused
             the abort is already in flight, never this one. *)
          assert false)
    results

let map_stats ?on_done ~jobs f tasks =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then
    (* The exact sequential path: in-order evaluation on the calling
       domain, no domains spawned, no channels, no locks. *)
    let results =
      Array.mapi
        (fun i x ->
          let v = f x in
          (match on_done with Some g -> g i v | None -> ());
          v)
        tasks
    in
    (results, sequential_stats n)
  else begin
    let w = min jobs n in
    let results = Array.make n Empty in
    (* Every index is distributed round-robin across the per-worker
       deques before any domain spawns; workers never produce new work,
       so "all deques empty" is a stable termination condition. *)
    let deques = Array.init w (fun _ -> Deque.create ()) in
    for i = 0 to n - 1 do
      Deque.push deques.(i mod w) i
    done;
    let completions = Chan.create () in
    let abort = Atomic.make false in
    let steals = Array.make w 0 in
    let ran = Array.make w 0 in
    let worker wid () =
      (* Own deque first (front: its indices in ascending order), then a
         steal sweep over the other workers' backs. *)
      let rec take k =
        if k = w then None
        else
          let victim = (wid + k) mod w in
          let got =
            if k = 0 then Deque.pop_front deques.(victim)
            else Deque.steal deques.(victim)
          in
          match got with
          | Some i ->
              if k > 0 then steals.(wid) <- steals.(wid) + 1;
              Some i
          | None -> take (k + 1)
      in
      let rec loop () =
        if not (Atomic.get abort) then
          match take 0 with
          | None -> ()
          | Some i ->
              results.(i) <- run_task f tasks.(i);
              ran.(wid) <- ran.(wid) + 1;
              Chan.send completions i;
              loop ()
      in
      loop ()
    in
    let domains = Array.make w None in
    (* If anything below raises — [Domain.spawn] mid-loop, [on_done] —
       the abort flag stops the workers at their next task boundary and
       every spawned domain is joined before the original exception
       reaches the caller: no detached domains, no lost exceptions. *)
    Fun.protect
      ~finally:(fun () ->
        Atomic.set abort true;
        Array.iter (function Some d -> Domain.join d | None -> ()) domains)
      (fun () ->
        Array.iteri
          (fun k _ -> domains.(k) <- Some (Domain.spawn (worker k)))
          domains;
        (* Drain one completion per task on the calling domain, so
           [on_done] runs here — free to touch caller state (checkpoint
           accumulators, progress output) without synchronisation. *)
        for _ = 1 to n do
          match Chan.recv completions with
          | None -> ()
          | Some i -> (
              match (on_done, results.(i)) with
              | Some g, Done v -> g i v
              | _ -> ())
        done);
    ( finish results,
      { workers = w; steals = Array.fold_left ( + ) 0 steals;
        tasks_per_worker = ran } )
  end

let map ?on_done ~jobs f tasks = fst (map_stats ?on_done ~jobs f tasks)

let map_list ~jobs f xs = Array.to_list (map ~jobs f (Array.of_list xs))
