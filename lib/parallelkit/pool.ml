let default_jobs () = Domain.recommended_domain_count ()

(* One task's result: the value, or the exception it raised (with the
   backtrace captured in the worker, so the re-raise on the caller still
   points at the real failure site). *)
type 'b slot =
  | Empty
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let run_task f x =
  match f x with
  | v -> Done v
  | exception e -> Raised (e, Printexc.get_raw_backtrace ())

let finish results =
  (* First failure in task order wins; a deterministic campaign therefore
     reports the same error whether it ran on 1 or N domains. *)
  Array.iter
    (function
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
      | Empty | Done _ -> ())
    results;
  Array.map
    (function
      | Done v -> v
      | Empty | Raised _ -> assert false (* all slots filled, none raised *))
    results

let map ~jobs f tasks =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then Array.map f tasks
  else begin
    let results = Array.make n Empty in
    let feed = Chan.create () in
    let worker () =
      let rec loop () =
        match Chan.recv feed with
        | None -> ()
        | Some i ->
            results.(i) <- run_task f tasks.(i);
            loop ()
      in
      loop ()
    in
    let domains =
      Array.init (min jobs n) (fun _ -> Domain.spawn worker)
    in
    for i = 0 to n - 1 do
      Chan.send feed i
    done;
    Chan.close feed;
    Array.iter Domain.join domains;
    finish results
  end

let map_list ~jobs f xs = Array.to_list (map ~jobs f (Array.of_list xs))
