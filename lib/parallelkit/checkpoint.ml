module C = Snapshot.Codec

let magic = "DIFTVPCP"
let version = 1

type t = {
  fingerprint : string;
  shards : int;
  entries : (int * string) list;  (* ascending by shard index *)
}

exception Mismatch of string

let create ~fingerprint ~shards =
  if shards < 0 then invalid_arg "Checkpoint.create: negative shard count";
  { fingerprint; shards; entries = [] }

let fingerprint t = t.fingerprint
let shards t = t.shards

let add t ~shard ~payload =
  if shard < 0 || shard >= t.shards then
    invalid_arg
      (Printf.sprintf "Checkpoint.add: shard %d outside 0..%d" shard
         (t.shards - 1));
  let entries =
    (shard, payload) :: List.remove_assoc shard t.entries
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { t with entries }

let find t shard = List.assoc_opt shard t.entries
let entries t = t.entries
let completed t = List.length t.entries
let is_complete t = completed t = t.shards

let require t ~fingerprint ~shards =
  if t.fingerprint <> fingerprint then
    raise
      (Mismatch
         (Printf.sprintf
            "checkpoint belongs to a different campaign (fingerprint %S, \
             resuming %S)"
            t.fingerprint fingerprint));
  if t.shards <> shards then
    raise
      (Mismatch
         (Printf.sprintf
            "checkpoint records %d shard(s), the resuming campaign has %d"
            t.shards shards))

let encode t =
  let w = C.writer () in
  C.put_u32 w version;
  C.put_string w t.fingerprint;
  C.put_varint w t.shards;
  C.put_list w
    (fun w (shard, payload) ->
      C.put_varint w shard;
      C.put_string w payload)
    t.entries;
  magic ^ C.contents w

let corrupt fmt = Printf.ksprintf (fun s -> raise (C.Corrupt s)) fmt

let decode s =
  if String.length s < 8 || String.sub s 0 8 <> magic then
    corrupt "not a campaign checkpoint (bad magic)";
  let r = C.reader (String.sub s 8 (String.length s - 8)) in
  let v = C.get_u32 r in
  if v <> version then corrupt "unsupported checkpoint version %d" v;
  let fingerprint = C.get_string r in
  let shards = C.get_varint r in
  let entries =
    C.get_list r (fun r ->
        let shard = C.get_varint r in
        let payload = C.get_string r in
        (shard, payload))
  in
  C.expect_end r;
  let rec check prev = function
    | [] -> ()
    | (shard, _) :: rest ->
        if shard >= shards then
          corrupt "checkpoint shard %d out of range (%d shards)" shard shards;
        if shard <= prev then
          corrupt "checkpoint shard indices not strictly ascending at %d" shard;
        check shard rest
  in
  check (-1) entries;
  { fingerprint; shards; entries }

let save t path = Snapshot.Io.write_file_atomic path (encode t)
let load path = decode (Snapshot.Io.read_file path)
