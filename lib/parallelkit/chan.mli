(** A minimal multi-producer / multi-consumer channel (mutex + condition
    queue) used to feed worker domains.

    Unbounded FIFO; [close] wakes every blocked receiver. Safe to use from
    any domain. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit
(** Enqueue a value. Raises [Invalid_argument] on a closed channel. *)

val recv : 'a t -> 'a option
(** Dequeue, blocking while the channel is open and empty. [None] once the
    channel is closed {e and} drained — the worker-shutdown signal. *)

val close : 'a t -> unit
(** Idempotent. Values already enqueued are still delivered. *)
