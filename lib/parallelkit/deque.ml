(* Growable ring buffer under a mutex. [head] is the index of the front
   element; the back element sits at [(head + len - 1) mod cap]. *)
type 'a t = {
  mutable buf : 'a option array;
  mutable head : int;
  mutable len : int;
  lock : Mutex.t;
}

let create () =
  { buf = Array.make 8 None; head = 0; len = 0; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (cap * 2) None in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf;
  t.head <- 0

let push t v =
  locked t (fun () ->
      if t.len = Array.length t.buf then grow t;
      t.buf.((t.head + t.len) mod Array.length t.buf) <- Some v;
      t.len <- t.len + 1)

let pop_front t =
  locked t (fun () ->
      if t.len = 0 then None
      else begin
        let v = t.buf.(t.head) in
        t.buf.(t.head) <- None;
        t.head <- (t.head + 1) mod Array.length t.buf;
        t.len <- t.len - 1;
        v
      end)

let steal t =
  locked t (fun () ->
      if t.len = 0 then None
      else begin
        let i = (t.head + t.len - 1) mod Array.length t.buf in
        let v = t.buf.(i) in
        t.buf.(i) <- None;
        t.len <- t.len - 1;
        v
      end)

let length t = locked t (fun () -> t.len)
