(** Deterministic sharded campaigns.

    A campaign of [total] independent tasks (fuzzing programs, bench
    repetitions, attack ids) is split into fixed shards; each shard gets
    its own PRNG seed {e derived from the campaign seed and the shard
    index alone}. Workers process whole shards, so per-shard state
    (coverage-guided generation, accumulators) never crosses a shard
    boundary, and merging shard results in shard-index order yields the
    same campaign report for any worker count — the [--jobs 1] vs
    [--jobs N] byte-identity contract.

    Determinism contract, restated as obligations on the caller:
    - a shard's work must be a function of (campaign seed, shard index,
      shard bounds) only;
    - cross-shard state (a global coverage table, a failure list) is
      produced by merging per-shard values in shard-index order with an
      order-independent merge (sums, set unions, concatenation in index
      order);
    - side effects that race (writing reproducer files, say) must target
      names unique to the task index. *)

type shard = {
  index : int;  (** 0-based shard number. *)
  start : int;  (** Tasks [start + 1 .. start + length] (1-based ids). *)
  length : int;
  seed : int;  (** Per-shard PRNG seed, see {!derive_seed}. *)
}

val derive_seed : seed:int -> shard:int -> int
(** Shard 0 keeps the campaign seed unchanged, so a single-shard campaign
    reproduces the historical sequential stream bit-for-bit; later shards
    get a splitmix64-style mix of (seed, shard index), truncated to a
    non-zero 32-bit value. *)

val shards : seed:int -> total:int -> shard_size:int -> shard array
(** Split [total] tasks into ceil(total/shard_size) shards. The split
    depends only on [total] and [shard_size], never on the worker count.
    [shard_size] must be positive; [total <= 0] yields no shards. *)

val splitmix64 : int -> int
(** The splitmix64 finalizer (63-bit result, OCaml int). Exposed for
    callers deriving further independent streams (e.g. a property-check
    RNG alongside the generation RNG). *)
