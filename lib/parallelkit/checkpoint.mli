(** Campaign checkpoints: the DIFTVPCP container.

    A long campaign (a 10^6-program fuzz run, say) checkpoints the
    results of {e completed shards} so a killed run restarts where it
    left off instead of from zero. The container holds

    - a caller-supplied {b fingerprint} — a string derived from every
      configuration field that determines the campaign's deterministic
      stream (seed, task count, shard size, oracle legs, …). Resuming
      under a different configuration is detected and refused rather
      than silently merging incompatible shard results;
    - the campaign's total {b shard count};
    - one opaque {b payload} string per completed shard, keyed by shard
      index — the campaign layer encodes/decodes its own shard results
      (e.g. [Difftest.Harness]'s counters + coverage + failures).

    Writes go through {!Snapshot.Io.write_file_atomic}, so a reader — in
    particular a resume after SIGKILL — only ever sees a complete,
    well-formed container. Which shards are present depends on where the
    run died; the {e merged report} after resume is byte-identical to an
    uninterrupted run's because shard payloads are deterministic and the
    merge happens in shard-index order, not completion order.

    Encoding (all via {!Snapshot.Codec}): magic "DIFTVPCP", u32 format
    version, fingerprint string, varint shard count, then a u32-counted
    list of (varint shard index, payload string) sorted by strictly
    ascending index. {!decode} raises {!Snapshot.Codec.Corrupt} on a bad
    magic, unsupported version, out-of-range or unsorted indices, or
    truncation. *)

type t

exception Mismatch of string
(** Raised by {!require} when a loaded checkpoint does not belong to the
    campaign being resumed (wrong fingerprint or shard count). *)

val create : fingerprint:string -> shards:int -> t
(** An empty checkpoint for a campaign of [shards] shards. [shards] must
    be non-negative. *)

val fingerprint : t -> string
val shards : t -> int

val add : t -> shard:int -> payload:string -> t
(** Record a completed shard (replacing any previous payload for the
    same index). Raises [Invalid_argument] if [shard] is out of range. *)

val find : t -> int -> string option
(** The payload of a completed shard, if present. *)

val entries : t -> (int * string) list
(** All completed shards, ascending by index. *)

val completed : t -> int
(** Number of completed shards recorded. *)

val is_complete : t -> bool

val require : t -> fingerprint:string -> shards:int -> unit
(** Validate that a loaded checkpoint matches the resuming campaign;
    raises {!Mismatch} with a human-readable explanation otherwise. *)

val encode : t -> string

val decode : string -> t
(** Raises {!Snapshot.Codec.Corrupt} on malformed input (see above). *)

val save : t -> string -> unit
(** Atomic temp-file + rename publish of [encode]. *)

val load : string -> t
(** [decode] of the file's contents; raises [Sys_error] if unreadable,
    {!Snapshot.Codec.Corrupt} if malformed or truncated. *)
