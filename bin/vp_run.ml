(* vp_run: assemble a RISC-V assembly file and execute it on the virtual
   prototype, with or without the DIFT engine.

     dune exec bin/vp_run.exe -- prog.s --policy integrity --uart-input hi

   Exit status: 0 clean exit, 2 instruction limit / idle, 3 security
   violation (also when the firmware exited 0 but violations were
   recorded), 4 fatal trap; a nonzero firmware exit code is passed
   through. *)

open Cmdliner
module J = Benchkit.Json

(* Exception-safe file I/O: the read closes its descriptor even when a
   decode raises mid-stream, and state/checkpoint writes are published
   atomically (temp + rename) so a crash never leaves a truncated
   artifact under the final name. *)
let read_file = Snapshot.Io.read_file
let write_file = Snapshot.Io.write_file_atomic

type policy_kind = P_none | P_integrity | P_confidentiality

let build_policy kind img =
  match kind with
  | P_none ->
      let lat = Dift.Lattice.integrity () in
      Dift.Policy.unrestricted lat
        ~default_tag:(Dift.Lattice.tag_of_name lat "HI")
  | P_integrity ->
      (* Code-injection and trap-steering protection: program HI, fetch
         clearance HI, trap-vector writes (mtvec/mepc) require HI. *)
      let lat = Dift.Lattice.integrity () in
      let hi = Dift.Lattice.tag_of_name lat "HI" in
      let li = Dift.Lattice.tag_of_name lat "LI" in
      Dift.Policy.make ~lattice:lat ~default_tag:li
        ~classification:
          [ Dift.Policy.region ~name:"program" ~lo:img.Rv32_asm.Image.org
              ~hi:(Rv32_asm.Image.limit img - 1) ~tag:hi ]
        ~exec_fetch:hi ~trap_csr:hi ()
  | P_confidentiality ->
      (* Anything in a region labelled "secret" is HC; the UART and CAN
         are cleared for LC. *)
      let lat = Dift.Lattice.confidentiality () in
      let lc = Dift.Lattice.tag_of_name lat "LC" in
      let hc = Dift.Lattice.tag_of_name lat "HC" in
      let classification =
        match Rv32_asm.Image.symbol_opt img "secret" with
        | Some lo ->
            let hi_addr =
              match Rv32_asm.Image.symbol_opt img "secret_end" with
              | Some e -> e - 1
              | None -> lo + 15
            in
            [ Dift.Policy.region ~name:"secret" ~lo ~hi:hi_addr ~tag:hc ]
        | None -> []
      in
      Dift.Policy.make ~lattice:lat ~default_tag:lc ~classification
        ~output_clearance:[ ("uart", lc); ("can", lc) ]
        ~exec_branch:lc ~exec_mem_addr:lc ()

let policy_name = function
  | P_none -> "none"
  | P_integrity -> "integrity"
  | P_confidentiality -> "confidentiality"

let run file policy_kind tracking max_insns uart_input show_symbols quiet
    echo_insns taint_map report coverage trace_on trace_out trace_format
    forensics graph_out json checkpoint_every checkpoint_out checkpoint_stop
    resume state_out quantum engine no_superblocks =
  let engine =
    if no_superblocks && engine = Rv32.Core.Threaded_superblock then
      Rv32.Core.Threaded
    else engine
  in
  let src = read_file file in
  match Rv32_asm.Parser.parse_result src with
  | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      1
  | Ok img ->
      if show_symbols then
        print_string (Format.asprintf "%a" Rv32_asm.Image.pp_symbols img);
      let policy = build_policy policy_kind img in
      let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
      let want_trace =
        trace_on || trace_out <> None || forensics || graph_out <> None
      in
      let tracer =
        if want_trace then
          Some (Trace.Tracer.create policy.Dift.Policy.lattice)
        else None
      in
      let graph_sink =
        match (tracer, graph_out) with
        | Some tr, Some _ ->
            let context =
              Printf.sprintf "policy=%s tracking=%b file=%s"
                (policy_name policy_kind) tracking (Filename.basename file)
            in
            Some (Trace.Graph.attach ~context tr)
        | _ -> None
      in
      let soc =
        Vp.Soc.create ~policy ~monitor ~tracking ~quantum ~engine ?tracer ()
      in
      (* Under the confidentiality policy the sensor is a classified
         source: every frame byte it serves is HC. *)
      (match policy_kind with
      | P_confidentiality ->
          Vp.Sensor.set_data_tag soc.Vp.Soc.sensor
            (Dift.Lattice.tag_of_name policy.Dift.Policy.lattice "HC")
      | P_none | P_integrity -> ());
      Vp.Soc.load_image soc img;
      (match uart_input with
      | Some s -> Vp.Uart.push_rx soc.Vp.Soc.uart s
      | None -> ());
      let covered = Hashtbl.create 1024 in
      if coverage then
        soc.Vp.Soc.cpu.Vp.Soc.cpu_set_trace
          (Some (fun pc _ -> Hashtbl.replace covered pc ()));
      if echo_insns > 0 then begin
        let remaining = ref echo_insns in
        soc.Vp.Soc.cpu.Vp.Soc.cpu_set_trace
          (Some
             (fun pc insn ->
               if !remaining > 0 then begin
                 decr remaining;
                 Printf.eprintf "%08x:  %s\n" pc (Rv32.Disasm.insn insn)
               end))
      end;
      (* A JSONL --trace-out is streamed as events happen rather than
         dumped from the ring afterwards: the ring only retains a tail,
         and a checkpointed run's trace plus its resumed continuation's
         must concatenate to the uninterrupted run's. *)
      let stream_oc =
        match (tracer, trace_out, trace_format) with
        | Some tr, Some path, `Jsonl ->
            let oc = open_out path in
            Trace.Sink.stream_jsonl tr oc;
            Some oc
        | _ -> None
      in
      (match resume with
      | Some path -> Vp.Soc.restore soc (read_file path)
      | None -> ());
      let stopped_at_checkpoint = ref false in
      let execute () =
        soc.Vp.Soc.cpu.Vp.Soc.cpu_set_max max_insns;
        Vp.Soc.start soc;
        (* A restored snapshot starts out paused at its checkpoint. *)
        soc.Vp.Soc.cpu.Vp.Soc.cpu_clear_paused ();
        match checkpoint_every with
        | None ->
            Vp.Soc.run soc;
            soc.Vp.Soc.cpu.Vp.Soc.cpu_exit ()
        | Some every ->
            let k = ref 0 in
            let rec go () =
              Vp.Soc.pause_at soc
                (soc.Vp.Soc.cpu.Vp.Soc.cpu_instret () + every);
              Vp.Soc.run soc;
              if Vp.Soc.paused soc then begin
                let path = Printf.sprintf "%s.%d" checkpoint_out !k in
                incr k;
                write_file path (Vp.Soc.save soc);
                if not quiet then
                  Printf.printf
                    "[vp] checkpoint (%d instructions) written to %s\n"
                    (soc.Vp.Soc.cpu.Vp.Soc.cpu_instret ())
                    path;
                if checkpoint_stop then begin
                  stopped_at_checkpoint := true;
                  soc.Vp.Soc.cpu.Vp.Soc.cpu_exit ()
                end
                else begin
                  soc.Vp.Soc.cpu.Vp.Soc.cpu_clear_paused ();
                  go ()
                end
              end
              else soc.Vp.Soc.cpu.Vp.Soc.cpu_exit ()
            in
            go ()
      in
      let outcome =
        try Ok (execute ())
        with
        | Dift.Violation.Violation v -> Error (`Violation v)
        | Rv32.Core.Fatal_trap { cause; pc; _ } -> Error (`Trap (cause, pc))
      in
      if taint_map then begin
        let lat = policy.Dift.Policy.lattice in
        let baseline =
          match Dift.Lattice.bottom lat with
          | Some b -> b
          | None -> policy.Dift.Policy.default_tag
        in
        let regions = Vp.Memory.tainted_regions soc.Vp.Soc.memory ~baseline in
        Printf.printf "[vp] taint map (%d tainted region(s), baseline %s):\n"
          (List.length regions)
          (Dift.Lattice.name lat baseline);
        List.iter
          (fun (lo, hi, tag) ->
            Printf.printf "  0x%08x..0x%08x  %s\n" (Vp.Soc.ram_base + lo)
              (Vp.Soc.ram_base + hi) (Dift.Lattice.name lat tag))
          regions
      end;
      if report then begin
        let lat = policy.Dift.Policy.lattice in
        Printf.printf "[vp] %s\n"
          (Format.asprintf "%a" Dift.Monitor.pp_summary monitor);
        List.iter
          (fun ev ->
            Printf.printf "  %s\n"
              (Format.asprintf "%a" (Dift.Monitor.pp_event lat) ev))
          (Dift.Monitor.events monitor)
      end;
      if coverage then begin
        (* Count executable words up to the first data label heuristic:
           just report covered distinct pcs vs total instruction words. *)
        let total = img.Rv32_asm.Image.insn_count in
        Printf.printf "[vp] coverage: %d distinct pcs executed (%d opcodes assembled)\n"
          (Hashtbl.length covered) total;
        (* List never-executed instruction addresses in the image that
           decode to something legal, capped for readability. *)
        let shown = ref 0 in
        let code = img.Rv32_asm.Image.code in
        let org = img.Rv32_asm.Image.org in
        let i = ref 0 in
        while !i + 4 <= Bytes.length code && !shown < 16 do
          let pc = org + !i in
          let w = Int32.to_int (Bytes.get_int32_le code !i) land 0xffffffff in
          (match Rv32.Decode.decode w with
          | Rv32.Insn.ILLEGAL _ -> ()
          | insn ->
              if not (Hashtbl.mem covered pc) then begin
                incr shown;
                Printf.printf "  never executed: %08x  %s\n" pc
                  (Rv32.Disasm.insn insn)
              end);
          i := !i + 4
        done
      end;
      let uart_out = Vp.Uart.tx_string soc.Vp.Soc.uart in
      if uart_out <> "" && not quiet then (
        print_string uart_out;
        if uart_out.[String.length uart_out - 1] <> '\n' then print_newline ());
      let reason, code =
        match outcome with
        | Ok (Rv32.Core.Exited ecode) ->
            if not quiet then
              Printf.printf "[vp] exited with code %d after %d instructions\n"
                ecode
                (soc.Vp.Soc.cpu.Vp.Soc.cpu_instret ());
            ("exited", if ecode = 0 then 0 else ecode land 0xff)
        | Ok Rv32.Core.Breakpoint ->
            Printf.printf "[vp] stopped at ebreak (pc=0x%08x)\n"
              (soc.Vp.Soc.cpu.Vp.Soc.cpu_pc ());
            ("breakpoint", 0)
        | Ok Rv32.Core.Insn_limit ->
            Printf.printf "[vp] instruction limit (%d) reached\n" max_insns;
            ("insn-limit", 2)
        | Ok Rv32.Core.Running when !stopped_at_checkpoint ->
            if not quiet then
              Printf.printf "[vp] stopped at checkpoint after %d instructions\n"
                (soc.Vp.Soc.cpu.Vp.Soc.cpu_instret ());
            ("checkpoint", 0)
        | Ok Rv32.Core.Running ->
            Printf.printf "[vp] simulation idle (deadlock?)\n";
            ("idle", 2)
        | Error (`Violation v) ->
            Printf.printf "[vp] SECURITY VIOLATION: %s\n"
              (Dift.Violation.to_string policy.Dift.Policy.lattice v);
            ("violation", 3)
        | Error (`Trap (cause, pc)) ->
            Printf.printf "[vp] fatal trap: cause %d at pc=0x%08x\n" cause pc;
            ("trap", 4)
      in
      (* A run that recorded violations never exits 0, even if the
         firmware reached a clean exit (Record-mode monitors, violations
         raised after the offending instruction retired, ...). *)
      let code =
        if code = 0 && Dift.Monitor.violation_count monitor > 0 then 3
        else code
      in
      let forensic_report =
        match tracer with
        | Some tr when forensics ->
            let violation =
              match outcome with
              | Error (`Violation v) -> Some v
              | _ -> (
                  match Dift.Monitor.violations monitor with
                  | v :: _ -> Some v
                  | [] -> None)
            in
            let context =
              Printf.sprintf "policy=%s tracking=%b file=%s"
                (policy_name policy_kind) tracking file
            in
            Some (Trace.Forensics.make ?violation ~context tr ())
        | _ -> None
      in
      (match forensic_report with
      | Some r -> Format.printf "%a@." Trace.Forensics.pp r
      | None -> ());
      (match (tracer, trace_out) with
      | Some tr, Some path ->
          (match stream_oc with
          | Some oc ->
              Trace.Sink.stop_stream tr;
              close_out oc
          | None -> Trace.Sink.write_file tr ~format:trace_format path);
          if not quiet then
            Printf.printf "[vp] trace (%d events recorded) written to %s\n"
              (Trace.Tracer.events_recorded tr)
              path
      | _ -> ());
      (match (graph_sink, graph_out) with
      | Some sink, Some path ->
          Trace.Graph.write_file sink path;
          if not quiet then
            Printf.printf
              "[vp] IFT graph store (%d nodes, %d edges) written to %s\n"
              (Iftgraph.Build.node_count (Trace.Graph.builder sink))
              (Iftgraph.Build.edge_count (Trace.Graph.builder sink))
              path
      | _ -> ());
      (match state_out with
      | None -> ()
      | Some path ->
          if
            Vp.Soc.paused soc
            || soc.Vp.Soc.cpu.Vp.Soc.cpu_exit () <> Rv32.Core.Running
          then begin
            write_file path (Vp.Soc.save soc);
            if not quiet then
              Printf.printf "[vp] final state written to %s\n" path
          end
          else
            Printf.eprintf
              "[vp] --state-out: run ended neither paused nor halted; no \
               state written\n");
      if json then begin
        let lat = policy.Dift.Policy.lattice in
        let doc =
          J.Obj
            ([
               ("file", J.Str file);
               ("policy", J.Str (policy_name policy_kind));
               ("tracking", J.Bool tracking);
               ("exit_code", J.num_of_int code);
               ("reason", J.Str reason);
               ("instructions", J.num_of_int (soc.Vp.Soc.cpu.Vp.Soc.cpu_instret ()));
               ("engine", J.Str (Rv32.Core.engine_name engine));
               ( "blocks_built",
                 J.num_of_int (soc.Vp.Soc.cpu.Vp.Soc.cpu_blocks_built ()) );
               ( "superblocks_built",
                 J.num_of_int (soc.Vp.Soc.cpu.Vp.Soc.cpu_superblocks_built ())
               );
               ( "chain_hits",
                 J.num_of_int (soc.Vp.Soc.cpu.Vp.Soc.cpu_chain_hits ()) );
               ("ic_hits", J.num_of_int (soc.Vp.Soc.cpu.Vp.Soc.cpu_ic_hits ()));
               ( "ic_misses",
                 J.num_of_int (soc.Vp.Soc.cpu.Vp.Soc.cpu_ic_misses ()) );
               ( "fast_retired",
                 J.num_of_int (soc.Vp.Soc.cpu.Vp.Soc.cpu_fast_retired ()) );
               ("sim_time_ps", J.num_of_int (Sysc.Kernel.now soc.Vp.Soc.kernel));
               ("checks", J.num_of_int (Dift.Monitor.check_count monitor));
               ("violations", J.num_of_int (Dift.Monitor.violation_count monitor));
               ( "declassifications",
                 J.num_of_int (Dift.Monitor.declassification_count monitor) );
               ("uart_tx", J.Str uart_out);
             ]
            @ (match Dift.Monitor.violations monitor with
              | [] -> []
              | vs ->
                  [
                    ( "violation_events",
                      J.List
                        (List.map (Trace.Forensics.violation_to_json lat) vs)
                    );
                  ])
            @ (match tracer with
              | Some tr ->
                  [ ("trace_events", J.num_of_int (Trace.Tracer.events_recorded tr)) ]
              | None -> [])
            @
            match forensic_report with
            | Some r -> [ ("forensics", Trace.Forensics.to_json r) ]
            | None -> [])
        in
        print_endline (J.to_string doc)
      end;
      code

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s" ~doc:"Assembly source file.")

let policy_arg =
  let kinds =
    [ ("none", P_none); ("integrity", P_integrity);
      ("confidentiality", P_confidentiality) ]
  in
  Arg.(value & opt (enum kinds) P_none
       & info [ "policy" ] ~docv:"KIND"
           ~doc:"Security policy: $(b,none), $(b,integrity) (code-injection \
                 and trap-steering protection), or $(b,confidentiality) (a \
                 region labelled $(i,secret)..$(i,secret_end) and the sensor \
                 data stream are classified HC).")

let tracking_arg =
  Arg.(value & flag & info [ "no-tracking" ] ~doc:"Run the plain VP (no DIFT engine).")

let max_arg =
  Arg.(value & opt int 100_000_000 & info [ "max-insns" ] ~docv:"N" ~doc:"Instruction budget.")

let uart_arg =
  Arg.(value & opt (some string) None
       & info [ "uart-input" ] ~docv:"STR" ~doc:"Bytes queued on the UART receiver.")

let symbols_arg =
  Arg.(value & flag & info [ "symbols" ] ~doc:"Print the symbol table before running.")

let quiet_arg = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress UART echo.")

let taint_map_arg =
  Arg.(value & flag
       & info [ "taint-map" ] ~doc:"Print the RAM taint map after the run.")

let report_arg =
  Arg.(value & flag
       & info [ "report" ] ~doc:"Print the DIFT monitor's event log after the run.")

let coverage_arg =
  Arg.(value & flag
       & info [ "coverage" ] ~doc:"Report executed-instruction coverage after the run.")

let echo_insns_arg =
  Arg.(value & opt int 0
       & info [ "echo-insns" ] ~docv:"N"
           ~doc:"Print the first $(docv) executed instructions to stderr.")

let trace_flag_arg =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"Enable the tracing subsystem (event ring + taint provenance).")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the recorded trace to $(docv) after the run (implies \
                 $(b,--trace)).")

let trace_format_arg =
  let fmts = [ ("jsonl", `Jsonl); ("chrome", `Chrome) ] in
  Arg.(value & opt (enum fmts) `Jsonl
       & info [ "trace-format" ] ~docv:"FMT"
           ~doc:"Trace file format: $(b,jsonl) (one event per line) or \
                 $(b,chrome) (Chrome trace_event, for about://tracing).")

let forensics_arg =
  Arg.(value & flag
       & info [ "forensics" ]
           ~doc:"Print a forensic report after the run: the violation, the \
                 trailing event window, and the provenance chain of the \
                 offending tag (implies $(b,--trace)).")

let graph_out_arg =
  Arg.(value & opt (some string) None
       & info [ "graph-out" ] ~docv:"FILE"
           ~doc:"Persist the run's full IFT provenance graph as a $(i,.iftg) \
                 store to $(docv) (implies $(b,--trace)). Query it later \
                 with $(b,vp_run analyze).")

let json_arg =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Print a machine-readable run summary (violations, check \
                 counts, sim time) as a single JSON object on stdout.")

let checkpoint_every_arg =
  Arg.(value & opt (some int) None
       & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Pause roughly every $(docv) instructions (rounded up to the \
                 next time-sync boundary) and write a full-platform snapshot.")

let checkpoint_out_arg =
  Arg.(value & opt string "vp.ckpt"
       & info [ "checkpoint-out" ] ~docv:"PATH"
           ~doc:"Snapshot file prefix: checkpoint $(i,k) is written to \
                 $(docv).$(i,k).")

let checkpoint_stop_arg =
  Arg.(value & flag
       & info [ "checkpoint-stop" ]
           ~doc:"Stop the run after writing the first checkpoint (exit \
                 status 0). Resume it later with $(b,--resume).")

let resume_arg =
  Arg.(value & opt (some file) None
       & info [ "resume" ] ~docv:"FILE"
           ~doc:"Restore the snapshot in $(docv) before running. The same \
                 source file, policy, and tracking flags as the run that \
                 wrote it must be given: a snapshot holds mutable state \
                 only, not configuration. Violations recorded before the \
                 checkpoint are not re-reported.")

let quantum_arg =
  Arg.(value & opt int 1000
       & info [ "quantum" ] ~docv:"CYCLES"
           ~doc:"Time-sync quantum: the CPU reconciles local time with the \
                 kernel every $(docv) cycles. Checkpoints land on these \
                 boundaries, so $(b,--checkpoint-every) is rounded up to \
                 the next one. A resumed run must use the same quantum as \
                 the run that wrote the snapshot.")

let engine_arg =
  let engine_conv =
    let parse s =
      match Rv32.Core.engine_of_string s with
      | Some e -> Ok e
      | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "unknown engine '%s' (expected interp|threaded|superblock)"
                  s))
    in
    Arg.conv
      (parse, fun fmt e -> Format.pp_print_string fmt (Rv32.Core.engine_name e))
  in
  Arg.(value & opt engine_conv Rv32.Core.Threaded_superblock
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: $(b,superblock) (default, compiled \
                 closure chains per basic block with hot block pairs \
                 linked into superblocks and $(b,jalr) inline caches), \
                 $(b,threaded) (closure chains, one basic block per \
                 dispatch) or $(b,interp) (per-instruction dispatch). \
                 Architecturally identical; a snapshot written under one \
                 engine resumes under any other.")

let no_superblocks_arg =
  Arg.(value & flag
       & info [ "no-superblocks" ]
           ~doc:"Disable superblock chaining and the $(b,jalr) inline \
                 caches: demote the default $(b,superblock) engine to plain \
                 $(b,threaded). No effect with an explicit \
                 $(b,--engine=threaded) or $(b,--engine=interp).")

let state_out_arg =
  Arg.(value & opt (some string) None
       & info [ "state-out" ] ~docv:"FILE"
           ~doc:"After the run ends (halt or checkpoint stop), write the \
                 final platform state as a snapshot to $(docv). Two runs of \
                 the same program write bit-identical files, which makes \
                 this the canonical artifact for determinism checks.")

(* --- analyze: query .iftg graph stores -------------------------------- *)

let analyze store jobs sources_of reaches summary top json =
  let pred_or_die what s =
    match Iftgraph.Query.parse_pred s with
    | Ok p -> p
    | Error msg ->
        Printf.eprintf "vp_run analyze: %s: %s\n" what msg;
        exit 1
  in
  let queries =
    List.concat
      [
        (match sources_of with
        | Some s -> [ `Sources (pred_or_die "--sources-of" s) ]
        | None -> []);
        (match reaches with
        | Some s -> [ `Reaches (pred_or_die "--reaches" s) ]
        | None -> []);
        (if summary then [ `Summary ] else []);
      ]
  in
  let queries = if queries = [] then [ `Summary ] else queries in
  match
    (try Ok (Iftgraph.Analyze.load_dir ~jobs store)
     with Invalid_argument msg -> Error msg)
  with
  | Error msg ->
      Printf.eprintf "vp_run analyze: %s\n" msg;
      1
  | Ok an ->
      if Iftgraph.Analyze.run_count an = 0 then begin
        Printf.eprintf "vp_run analyze: no %s stores in %s\n"
          Iftgraph.Analyze.store_ext store;
        1
      end
      else begin
        (try
           List.iter
             (fun q ->
               if json then
                 let doc =
                   match q with
                   | `Sources p -> Iftgraph.Report.sources_json an p
                   | `Reaches p -> Iftgraph.Report.reaches_json an p
                   | `Summary -> Iftgraph.Report.summary_json ~top an
                 in
                 print_endline (J.to_string doc)
               else
                 let text =
                   match q with
                   | `Sources p -> Iftgraph.Report.sources_text an p
                   | `Reaches p -> Iftgraph.Report.reaches_text an p
                   | `Summary -> Iftgraph.Report.summary_text ~top an
                 in
                 print_string text)
             queries
         with Snapshot.Codec.Corrupt msg ->
           Printf.eprintf "vp_run analyze: corrupt store: %s\n" msg;
           exit 1);
        0
      end

let store_arg =
  Arg.(required & opt (some string) None
       & info [ "store" ] ~docv:"DIR"
           ~doc:"Directory of $(i,.iftg) graph stores (from \
                 $(b,--graph-out), $(b,policy_fuzz --graph-out) or the \
                 difftest shrinker).")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs" ] ~docv:"N"
           ~doc:"Worker domains for store ingestion. Reports are identical \
                 for every $(docv).")

let sources_of_arg =
  Arg.(value & opt (some string) None
       & info [ "sources-of" ] ~docv:"PRED"
           ~doc:"Backward query: walk from the nodes matching $(docv) \
                 ($(b,violation:)$(i,K), $(b,pc:)$(i,0xADDR), \
                 $(b,tag:)$(i,NAME), $(b,origin:)$(i,NAME) or \
                 $(b,addr:)$(i,0xADDR)) back to the peripheral sources that \
                 seeded them.")

let reaches_arg =
  Arg.(value & opt (some string) None
       & info [ "reaches" ] ~docv:"PRED"
           ~doc:"Forward query: everything the nodes matching $(docv) flow \
                 into, including any violations reached.")

let summary_arg =
  Arg.(value & flag
       & info [ "summary" ]
           ~doc:"Cross-run aggregate: per-store counts, the per-peripheral \
                 reach histogram and the top flow paths. The default when \
                 no query is given.")

let top_arg =
  Arg.(value & opt int 10
       & info [ "top" ] ~docv:"K" ~doc:"Flow paths shown in the summary.")

let analyze_cmd =
  let doc = "query persisted IFT provenance-graph stores" in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      const analyze $ store_arg $ jobs_arg $ sources_of_arg $ reaches_arg
      $ summary_arg $ top_arg $ json_arg)

let run_term =
  Term.(
    const (fun f p nt m u s q echo tm rep cov tr trout trfmt forn gout js ck
              ckout ckstop res stout qn eng nsb ->
        run f p (not nt) m u s q echo tm rep cov tr trout trfmt forn gout js
          ck ckout ckstop res stout qn eng nsb)
    $ file_arg $ policy_arg $ tracking_arg $ max_arg $ uart_arg $ symbols_arg
    $ quiet_arg $ echo_insns_arg $ taint_map_arg $ report_arg $ coverage_arg
    $ trace_flag_arg $ trace_out_arg $ trace_format_arg $ forensics_arg
    $ graph_out_arg $ json_arg $ checkpoint_every_arg $ checkpoint_out_arg
    $ checkpoint_stop_arg $ resume_arg $ state_out_arg $ quantum_arg
    $ engine_arg $ no_superblocks_arg)

let cmd =
  let doc = "execute a RISC-V binary on the DIFT-enabled virtual prototype" in
  Cmd.group ~default:run_term
    (Cmd.info "vp_run" ~doc)
    [
      Cmd.v
        (Cmd.info "run"
           ~doc:"assemble and execute a program (the default command)")
        run_term;
      analyze_cmd;
    ]

(* Every pre-subcommand invocation (`vp_run prog.s --policy ...`) must
   keep working, so unless the first argument names a subcommand (or
   asks for help), route the whole line to `run`. *)
let argv =
  let argv = Sys.argv in
  if Array.length argv <= 1 then argv
  else
    match argv.(1) with
    | "run" | "analyze" | "--help" | "-h" | "--version" -> argv
    | _ ->
        Array.append
          [| argv.(0); "run" |]
          (Array.sub argv 1 (Array.length argv - 1))

let () = exit (Cmd.eval' ~argv cmd)
