(* policy_fuzz: coverage-guided differential testing of the DIFT engine.

   Random structured programs (branches, bounded loops, calls, M-extension
   edge operands) run on the golden-model interpreter, the plain VP and
   VP+ under random security policies; any invariant violation is shrunk
   to a minimal .s reproducer.

     dune exec bin/policy_fuzz.exe -- --programs 500 --seed 42
     dune exec bin/policy_fuzz.exe -- --inject mulhsu --shrink-dir /tmp *)

open Cmdliner

let run programs seed size no_shrink shrink_dir graph_dir props_every inject
    cache_diff snap_diff engine no_superblocks engine_diff jobs no_warm_start
    shard_size checkpoint resume =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Parallelkit.Pool.default_jobs ()
  in
  let engine =
    if no_superblocks && engine = Rv32.Core.Threaded_superblock then
      Rv32.Core.Threaded
    else engine
  in
  let engines =
    if engine_diff then
      (* Cross-check every other engine against the base one. *)
      let all =
        [ Rv32.Core.Threaded_superblock; Rv32.Core.Threaded; Rv32.Core.Interp ]
      in
      let others = List.filter (fun e -> e <> engine) all in
      let others =
        if no_superblocks then
          List.filter (fun e -> e <> Rv32.Core.Threaded_superblock) others
        else others
      in
      engine :: others
    else [ engine ]
  in
  let config =
    {
      Difftest.Harness.seed;
      programs;
      size;
      shrink = not no_shrink;
      shrink_dir;
      graph_dir;
      props_every;
      inject;
      cache_diff;
      snap_diff;
      engines;
      jobs;
      warm_start = not no_warm_start;
      shard_size = max 1 shard_size;
      checkpoint;
      resume;
    }
  in
  (* A bad checkpoint must fail cleanly before any campaign work: wrong
     campaign (fingerprint/shard-count mismatch), corrupt or truncated
     container, or an unreadable path. *)
  match Difftest.Harness.run ~config () with
  | exception Parallelkit.Checkpoint.Mismatch msg ->
      Printf.eprintf "policy_fuzz: cannot resume: %s\n" msg;
      2
  | exception Snapshot.Codec.Corrupt msg ->
      Printf.eprintf "policy_fuzz: corrupt checkpoint: %s\n" msg;
      2
  | exception Sys_error msg ->
      Printf.eprintf "policy_fuzz: %s\n" msg;
      2
  | report ->
      Format.printf "%a@." Difftest.Harness.pp_report report;
      let healthy = Difftest.Harness.healthy report in
      let clean = healthy && report.Difftest.Harness.injected_hits = 0 in
      if clean then Format.printf "all invariants hold.@."
      else if healthy then
        Format.printf
          "injected fault detected and shrunk (see reproducers above).@."
      else Format.printf "INVARIANT VIOLATIONS — see failures above.@.";
      if clean then 0 else 1

let programs_arg =
  Arg.(value & opt int 200 & info [ "programs"; "n" ] ~docv:"N" ~doc:"Programs to generate.")

let seed_arg =
  Arg.(value & opt int 0x5eed & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (runs are reproducible).")

let size_arg =
  Arg.(value & opt int 30 & info [ "size" ] ~docv:"K" ~doc:"Blocks per program (roughly 3 instructions each).")

let no_shrink_arg =
  Arg.(value & flag & info [ "no-shrink" ] ~doc:"Do not minimise failing programs.")

let shrink_dir_arg =
  Arg.(value & opt (some dir) None & info [ "shrink-dir" ] ~docv:"DIR"
         ~doc:"Write shrunk reproducers as .s files into $(docv).")

let graph_dir_arg =
  Arg.(value & opt (some dir) None & info [ "graph-out" ] ~docv:"DIR"
         ~doc:"Write each reproducer's IFT provenance-graph store \
               (repro_*.iftg, from the tracked forensic replay) into \
               $(docv); query them with $(b,vp_run analyze --store) $(docv).")

let props_every_arg =
  Arg.(value & opt int 5 & info [ "props-every" ] ~docv:"N"
         ~doc:"Check taint-metamorphic properties every $(docv)th program (0 disables).")

(* Reject typos up front: an unknown opcode would never fire and the run
   would silently report success. *)
let opcode_conv =
  let parse s =
    if List.mem s Rv32.Insn.rv32im_opcodes then Ok s
    else
      Error
        (`Msg
           (Printf.sprintf "unknown RV32IM opcode '%s' (try one of: %s)" s
              (String.concat " " Rv32.Insn.rv32im_opcodes)))
  in
  Arg.conv (parse, Format.pp_print_string)

let inject_arg =
  Arg.(value & opt (some opcode_conv) None & info [ "inject" ] ~docv:"OPCODE"
         ~doc:"Fault injection: flag any program executing $(docv) as failing, \
               then shrink it — validates the detect-shrink-report pipeline end to end.")

let cache_diff_arg =
  Arg.(value & flag & info [ "cache-diff" ]
         ~doc:"Also re-run every program with the decoded-block cache and \
               untainted fast path disabled and require agreement with the \
               cached runs (doubles oracle cost).")

let snap_diff_arg =
  Arg.(value & flag & info [ "snap-diff" ]
         ~doc:"Also re-run every program chopped into checkpointed segments \
               (pause, snapshot, restore into a fresh SoC, continue) and \
               require agreement with an uninterrupted run (roughly triples \
               oracle cost).")

let engine_conv =
  let parse s =
    match Rv32.Core.engine_of_string s with
    | Some e -> Ok e
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown engine '%s' (expected interp|threaded|superblock)" s))
  in
  Arg.conv
    (parse, fun fmt e -> Format.pp_print_string fmt (Rv32.Core.engine_name e))

let engine_arg =
  Arg.(value & opt engine_conv Rv32.Core.Threaded_superblock
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine for the VP legs: $(b,superblock) \
                 (default, compiled closure chains with superblock \
                 chaining and jalr inline caches), $(b,threaded) \
                 (single-block closure chains) or $(b,interp) \
                 (per-instruction dispatch).")

let no_superblocks_arg =
  Arg.(value & flag & info [ "no-superblocks" ]
         ~doc:"Demote the superblock engine to plain $(b,threaded): no \
               hot-edge chaining, no jalr inline caches. With \
               $(b,--engine-diff) the superblock leg is dropped too.")

let engine_diff_arg =
  Arg.(value & flag & info [ "engine-diff" ]
         ~doc:"Also cross-check every other execution engine against \
               $(b,--engine) on every program, on both VP flavours — \
               byte-identical registers, memory, instret and taint tags \
               (roughly one extra VP cost per engine). Divergences shrink \
               to .s reproducers like every other leg.")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker domains running campaign shards concurrently \
               (default: the runtime's recommended domain count). The \
               report is byte-identical for every value; $(b,--jobs 1) \
               takes the exact sequential code path.")

let no_warm_start_arg =
  Arg.(value & flag & info [ "no-warm-start" ]
         ~doc:"Cold-boot a fresh SoC for every oracle run instead of \
               restoring the shared post-reset boot snapshot. \
               Architecturally identical; for measurement and debugging.")

let shard_size_arg =
  Arg.(value & opt int Difftest.Harness.default.Difftest.Harness.shard_size
       & info [ "shard-size" ] ~docv:"N"
           ~doc:"Programs per campaign shard — the unit of parallel \
                 scheduling and of checkpointing. Changing it changes the \
                 per-shard seed derivation (and hence the generated \
                 stream), so it is part of a checkpoint's campaign \
                 fingerprint; the report at any given shard size is still \
                 byte-identical for every $(b,--jobs) value.")

let checkpoint_arg =
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Checkpoint completed-shard results to $(docv) (atomically \
               rewritten after every shard). A killed campaign resumes \
               from it with $(b,--resume); combine both to keep \
               checkpointing after the resume.")

let resume_arg =
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE"
         ~doc:"Resume from a checkpoint written by $(b,--checkpoint): \
               shards recorded there are not re-run, and the final \
               report is byte-identical to an uninterrupted run's. The \
               campaign configuration must match the one that wrote the \
               checkpoint ($(b,--jobs) and warm start may differ).")

let cmd =
  let doc = "coverage-guided differential testing of the DIFT engine" in
  Cmd.v (Cmd.info "policy_fuzz" ~doc)
    Term.(const run $ programs_arg $ seed_arg $ size_arg $ no_shrink_arg
          $ shrink_dir_arg $ graph_dir_arg $ props_every_arg $ inject_arg
          $ cache_diff_arg $ snap_diff_arg $ engine_arg $ no_superblocks_arg
          $ engine_diff_arg $ jobs_arg $ no_warm_start_arg $ shard_size_arg
          $ checkpoint_arg $ resume_arg)

let () = exit (Cmd.eval' cmd)
