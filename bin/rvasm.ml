(* rvasm: assemble a RISC-V source file and dump the image as hex words
   with disassembly, or as raw binary.

     dune exec bin/rvasm.exe -- prog.s
     dune exec bin/rvasm.exe -- prog.s -o prog.bin *)

open Cmdliner

let read_file = Snapshot.Io.read_file

let assemble file org output symbols =
  let src = read_file file in
  match Rv32_asm.Parser.parse_result ~org src with
  | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      1
  | Ok img ->
      (match output with
      | Some path ->
          Snapshot.Io.write_file_atomic path
            (Bytes.to_string img.Rv32_asm.Image.code);
          Printf.printf "%s: %d bytes at 0x%08x (%d opcodes)\n" path
            (Rv32_asm.Image.size img) img.Rv32_asm.Image.org
            img.Rv32_asm.Image.insn_count
      | None ->
          let code = img.Rv32_asm.Image.code in
          let n = Bytes.length code in
          let i = ref 0 in
          while !i + 4 <= n do
            let w = Int32.to_int (Bytes.get_int32_le code !i) land 0xffffffff in
            Printf.printf "%08x:  %08x  %s\n"
              (img.Rv32_asm.Image.org + !i)
              w (Rv32.Disasm.word w);
            i := !i + 4
          done;
          if !i < n then begin
            Printf.printf "%08x: " (img.Rv32_asm.Image.org + !i);
            while !i < n do
              Printf.printf " %02x" (Bytes.get_uint8 code !i);
              incr i
            done;
            print_newline ()
          end);
      if symbols then
        print_string (Format.asprintf "%a" Rv32_asm.Image.pp_symbols img);
      0

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s" ~doc:"Assembly source.")

let org_arg =
  Arg.(value & opt int 0x8000_0000 & info [ "org" ] ~docv:"ADDR" ~doc:"Load address.")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write raw binary instead of a listing.")

let symbols_arg =
  Arg.(value & flag & info [ "symbols" ] ~doc:"Also print the symbol table.")

let cmd =
  let doc = "assemble RV32IM sources for the virtual prototype" in
  Cmd.v (Cmd.info "rvasm" ~doc)
    Term.(const assemble $ file_arg $ org_arg $ out_arg $ symbols_arg)

let () = exit (Cmd.eval' cmd)
